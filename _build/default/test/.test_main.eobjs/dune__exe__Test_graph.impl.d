test/test_graph.ml: Alcotest Array Krsp_graph Krsp_util List Option Printf QCheck2 QCheck_alcotest
