test/test_bigint.ml: Alcotest Krsp_bigint List Printf QCheck2 QCheck_alcotest
