test/test_gen.ml: Alcotest Krsp_core Krsp_gen Krsp_graph Krsp_util
