test/test_util.ml: Alcotest Array Krsp_util List String
