test/test_flow.ml: Alcotest Array Krsp_bigint Krsp_flow Krsp_graph Krsp_lp Krsp_util List QCheck2 QCheck_alcotest
