(* Multi-description video streaming over an ISP-like topology.

   A streaming source splits a video into k descriptions and sends each over
   its own edge-disjoint path (the paper's motivating multimedia scenario):
   the *sum* of path delays bounds the total buffering the receiver must
   provision, while link costs model transit fees. We sweep the accuracy
   knob ε of the Theorem 4 scaling wrapper and watch the cost/latency/time
   trade-off on a Waxman random graph (the classical ISP model).

   Run with:  dune exec examples/video_streaming.exe *)

module G = Krsp_graph.Digraph
module X = Krsp_util.Xoshiro
module Table = Krsp_util.Table
module Timer = Krsp_util.Timer
module Instance = Krsp_core.Instance
module Scaling = Krsp_core.Scaling

let () =
  let rng = X.create ~seed:7 in
  let g0 =
    Krsp_gen.Topology.waxman rng ~n:26 ~alpha:0.9 ~beta:0.35
      { Krsp_gen.Topology.cost_range = (1, 30); delay_range = (1, 1) }
  in
  (* realistic magnitudes: tariffs in milli-cents, delays in microseconds —
     large enough that the Theorem 4 scaling actually rounds (theta > 1) and
     the choice of epsilon is visible *)
  let g =
    fst (G.filter_map_edges g0 ~f:(fun e -> Some (977 * G.cost g0 e, 977 * G.delay g0 e)))
  in
  Printf.printf "waxman ISP topology: %d routers, %d links\n" (G.n g) (G.m g);
  match Krsp_gen.Instgen.instance rng g { Krsp_gen.Instgen.k = 2; tightness = 0.4 } with
  | None -> print_endline "sampled topology has no 2-connected pair; re-seed"
  | Some t ->
    Printf.printf "streaming %d descriptions %d -> %d, total delay budget %d\n\n"
      t.Instance.k t.Instance.src t.Instance.dst t.Instance.delay_bound;
    let table =
      Table.create
        ~columns:
          [ ("epsilon", Table.Right); ("cost", Table.Right); ("delay", Table.Right);
            ("delay/budget", Table.Right); ("iterations", Table.Right);
            ("time (ms)", Table.Right)
          ]
    in
    List.iter
      (fun eps ->
        let outcome, ms =
          Timer.time_ms (fun () -> Scaling.solve t ~epsilon1:eps ~epsilon2:eps ())
        in
        match outcome with
        | Ok r ->
          let sol = r.Scaling.solution in
          Table.add_row table
            [ Table.fmt_float ~decimals:2 eps;
              string_of_int sol.Instance.cost;
              string_of_int sol.Instance.delay;
              Table.fmt_ratio
                (float_of_int sol.Instance.delay /. float_of_int t.Instance.delay_bound);
              string_of_int r.Scaling.stats.Krsp_core.Krsp.iterations;
              Table.fmt_float ~decimals:1 ms
            ]
        | Error _ -> Table.add_row table [ Table.fmt_float ~decimals:2 eps; "-"; "-"; "-"; "-"; "-" ])
      [ 1.0; 0.5; 0.25 ];
    Table.print table;
    print_endline
      "\nSmaller epsilon tightens both guarantees (delay <= (1+eps)·budget,\n\
       cost <= (2+eps)·OPT) at the price of a finer-grained search."
