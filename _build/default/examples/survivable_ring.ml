(* Survivable routing on a metro ring: failure injection.

   Metro/SONET networks are rings with a few chords. Disjoint-path routing
   is what makes them survivable: if any single link on one path dies, the
   other path still carries traffic. This example provisions a disjoint pair
   with Algorithm 1, then kills each link of the primary path in turn and
   re-solves, checking that the network heals within the delay budget.

   Run with:  dune exec examples/survivable_ring.exe *)

module G = Krsp_graph.Digraph
module Path = Krsp_graph.Path
module X = Krsp_util.Xoshiro
module Instance = Krsp_core.Instance
module Krsp = Krsp_core.Krsp

(* copy of [g] without edge [dead] *)
let without_edge g dead =
  fst
    (G.filter_map_edges g ~f:(fun e ->
         if e = dead then None else Some (G.cost g e, G.delay g e)))

let () =
  let rng = X.create ~seed:21 in
  let g = Krsp_gen.Topology.ring_chords rng ~n:12 ~chords:8 Krsp_gen.Topology.default_weights in
  Printf.printf "metro ring: %d nodes, %d directed links\n" (G.n g) (G.m g);
  match Krsp_gen.Instgen.instance_st g ~src:0 ~dst:6 { Krsp_gen.Instgen.k = 2; tightness = 0.9 } with
  | None -> print_endline "ring pair not 2-connected; re-seed"
  | Some t ->
    (match Krsp.solve t () with
    | Error _ -> print_endline "no survivable pair within budget"
    | Ok (sol, _) ->
      Format.printf "provisioned pair (budget %d):@.%a@." t.Instance.delay_bound
        (Instance.pp_solution t) sol;
      let primary = List.hd sol.Instance.paths in
      Printf.printf "injecting failures on the %d links of the primary path:\n"
        (List.length primary);
      let healed = ref 0 and total = ref 0 in
      List.iter
        (fun dead ->
          incr total;
          let h = without_edge g dead in
          let ok =
            match
              ( Krsp_graph.Bfs.edge_connectivity_at_least h ~src:0 ~dst:6 ~k:2,
                (try
                   let t' = Instance.create h ~src:0 ~dst:6 ~k:2 ~delay_bound:t.Instance.delay_bound in
                   (match Krsp.solve t' () with
                   | Ok (sol', _) -> Some sol'
                   | Error _ -> None)
                 with Invalid_argument _ -> None) )
            with
            | true, Some sol' ->
              Printf.printf "  link %2d down: re-routed, cost %d, delay %d\n" dead
                sol'.Instance.cost sol'.Instance.delay;
              true
            | _, _ ->
              Printf.printf "  link %2d down: NOT survivable within budget\n" dead;
              false
          in
          if ok then incr healed)
        primary;
      Printf.printf "healed %d/%d single-link failures within the delay budget\n" !healed
        !total)
