(* Priority routing over a kRSP solution — the paper's deployment story.

   Section 1 of the paper argues that bounding the *total* delay of the k
   paths (rather than each path's delay) is the right relaxation because the
   operator then "routes urgent packages via paths of low delay whilst
   deferrable ones via paths of high delay". This example closes that loop:
   provision k = 3 disjoint paths with Algorithm 1, then dispatch four
   traffic classes onto them by urgency and report what each class gets.

   Run with:  dune exec examples/priority_routing.exe *)

module G = Krsp_graph.Digraph
module X = Krsp_util.Xoshiro
module Table = Krsp_util.Table
module Instance = Krsp_core.Instance
module Krsp = Krsp_core.Krsp
module PR = Krsp_route.Priority_routing

let () =
  let rng = X.create ~seed:12 in
  let g =
    Krsp_gen.Topology.erdos_renyi rng ~n:16 ~p:0.35 Krsp_gen.Topology.default_weights
  in
  match Krsp_gen.Instgen.instance rng g { Krsp_gen.Instgen.k = 3; tightness = 0.4 } with
  | None -> print_endline "sampled topology has no 3-connected pair; re-seed"
  | Some t -> (
    match Krsp.solve t () with
    | Error _ -> print_endline "no feasible path set"
    | Ok (sol, _) ->
      Printf.printf "provisioned %d disjoint paths %d -> %d (total delay %d <= budget %d)\n\n"
        t.Instance.k t.Instance.src t.Instance.dst sol.Instance.delay t.Instance.delay_bound;
      let classes =
        [ { PR.name = "voice"; priority = 0; volume = 0.6 };
          { PR.name = "video"; priority = 1; volume = 1.0 };
          { PR.name = "web"; priority = 2; volume = 0.8 };
          { PR.name = "backup"; priority = 3; volume = 0.6 }
        ]
      in
      let a = PR.assign t.Instance.graph ~paths:sol.Instance.paths ~classes in
      let table =
        Table.create
          ~columns:
            [ ("class", Table.Left); ("priority", Table.Right); ("volume", Table.Right);
              ("mean delay", Table.Right)
            ]
      in
      List.iter
        (fun c ->
          Table.add_row table
            [ c.PR.name; string_of_int c.PR.priority;
              Table.fmt_float ~decimals:1 c.PR.volume;
              Table.fmt_float ~decimals:1 (List.assoc c.PR.name a.PR.class_delay)
            ])
        classes;
      Table.print table;
      Printf.printf "\npath loads (sorted by delay):\n";
      List.iteri
        (fun i info ->
          Printf.printf "  path %d: delay %d, load %.2f\n" (i + 1) info.PR.path_delay
            info.PR.load)
        a.PR.paths;
      Printf.printf "\noverall mean delay %.1f; urgency ordering respected: %b; overflow %.2f\n"
        (PR.mean_delay a) (PR.urgency_respected a) a.PR.overflow)
