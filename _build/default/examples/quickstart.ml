(* Quickstart: build a small network by hand, ask for k = 2 edge-disjoint
   paths whose total delay fits a budget, and print what each algorithm in
   the library has to say about it.

   Run with:  dune exec examples/quickstart.exe *)

module G = Krsp_graph.Digraph
module Path = Krsp_graph.Path
module Instance = Krsp_core.Instance
module Krsp = Krsp_core.Krsp

let () =
  (* A five-node network. Edge annotations are (cost, delay): think of cost
     as a monetary tariff and delay in milliseconds.

         0 ──(1,10)── 1 ──(1,10)── 3
         0 ──(2, 1)── 2 ──(2, 1)── 3
         0 ─────────(10, 5)─────── 3
  *)
  let g = G.create ~n:4 () in
  let add src dst cost delay = ignore (G.add_edge g ~src ~dst ~cost ~delay) in
  add 0 1 1 10;
  add 1 3 1 10;
  add 0 2 2 1;
  add 2 3 2 1;
  add 0 3 10 5;

  (* Two disjoint paths from 0 to 3, total delay at most 8 ms. *)
  let t = Instance.create g ~src:0 ~dst:3 ~k:2 ~delay_bound:8 in

  print_endline "kRSP quickstart: k=2 disjoint paths from 0 to 3, delay budget 8";
  print_newline ();

  (match Krsp.solve t () with
  | Ok (sol, stats) ->
    Format.printf "Algorithm 1 (bicameral cycle cancellation):@.%a"
      (Instance.pp_solution t) sol;
    Format.printf "  cancelled %d cycle(s): %d type-0, %d type-1, %d type-2@."
      stats.Krsp.iterations stats.Krsp.type0 stats.Krsp.type1 stats.Krsp.type2
  | Error Krsp.No_k_disjoint_paths ->
    print_endline "the network does not carry 2 disjoint paths"
  | Error (Krsp.Delay_bound_unreachable d) ->
    Printf.printf "infeasible: even the fastest disjoint pair needs %d ms\n" d);
  print_newline ();

  (* What would ignoring the delay budget have cost us? *)
  (match Krsp_core.Baselines.min_sum_only t with
  | { Krsp_core.Baselines.solution = Some sol; feasible } ->
    Printf.printf "cheapest disjoint pair: cost %d, delay %d -> %s\n" sol.Instance.cost
      sol.Instance.delay
      (if feasible then "feasible" else "VIOLATES the delay budget")
  | _ -> print_endline "no disjoint pair at all");

  (* And the brute-force optimum, for reference (tiny graph, so it's cheap): *)
  match Krsp_core.Exact.solve t with
  | Some opt -> Printf.printf "exact optimum: cost %d, delay %d\n" opt.Krsp_core.Exact.cost opt.Krsp_core.Exact.delay
  | None -> print_endline "exact solver: infeasible"
