(* SDN multipath provisioning on a data-center fat-tree.

   The paper's introduction motivates kRSP with software-defined networks: a
   controller with a global view provisions several disjoint tunnels between
   two endpoints so that traffic can be spread (or survive failures), while
   the *total* latency budget across the tunnel set is kept and the total
   link-cost (e.g. billed bandwidth) is minimised.

   This example provisions k = 1..3 disjoint tunnels between two edge
   switches in different pods of a 4-pod fat-tree and compares Algorithm 1
   against the naive alternatives an SDN controller might otherwise use.

   Run with:  dune exec examples/sdn_multipath.exe *)

module G = Krsp_graph.Digraph
module X = Krsp_util.Xoshiro
module Table = Krsp_util.Table
module Instance = Krsp_core.Instance
module Krsp = Krsp_core.Krsp
module Baselines = Krsp_core.Baselines

let () =
  let rng = X.create ~seed:2026 in
  let pods = 6 in
  let g = Krsp_gen.Topology.fat_tree rng ~pods Krsp_gen.Topology.default_weights in
  (* edge switches start after core and aggregation switches *)
  let half = pods / 2 in
  let edge p i = (half * half) + (pods * half) + (p * half) + i in
  let src = edge 0 0 and dst = edge 3 1 in
  Printf.printf "fat-tree with %d pods: %d switches, %d directed links\n" pods (G.n g) (G.m g);
  Printf.printf "provisioning tunnels %d -> %d\n\n" src dst;

  let table =
    Table.create
      ~columns:
        [ ("k", Table.Right); ("budget", Table.Right); ("algorithm", Table.Left);
          ("cost", Table.Right); ("delay", Table.Right); ("feasible", Table.Left)
        ]
  in
  let row k budget name cost delay feasible =
    Table.add_row table
      [ string_of_int k; string_of_int budget; name; cost; delay;
        (if feasible then "yes" else "NO")
      ]
  in
  List.iter
    (fun k ->
      match Krsp_gen.Instgen.instance_st g ~src ~dst { Krsp_gen.Instgen.k; tightness = 0.3 } with
      | None -> Printf.printf "k=%d: not enough disjoint paths\n" k
      | Some t ->
        let budget = t.Instance.delay_bound in
        (match Krsp.solve t () with
        | Ok (sol, _) ->
          row k budget "kRSP (Algorithm 1)" (string_of_int sol.Instance.cost)
            (string_of_int sol.Instance.delay)
            (Instance.is_feasible t sol)
        | Error _ -> row k budget "kRSP (Algorithm 1)" "-" "-" false);
        let baseline name (r : Baselines.run) =
          match r.Baselines.solution with
          | Some sol ->
            row k budget name (string_of_int sol.Instance.cost)
              (string_of_int sol.Instance.delay) r.Baselines.feasible
          | None -> row k budget name "-" "-" false
        in
        baseline "cheapest tunnels (delay-blind)" (Baselines.min_sum_only t);
        baseline "fastest tunnels (cost-blind)" (Baselines.min_delay_only t);
        baseline "sequential LARAC" (Baselines.larac_per_path t);
        Table.add_separator table)
    [ 1; 2; 3 ];
  Table.print table;
  print_endline
    "\nReading guide: the delay-blind provisioning often busts the budget; the\n\
     cost-blind one meets it at a premium; Algorithm 1 meets the budget at a\n\
     cost provably within 2x of the optimum."
