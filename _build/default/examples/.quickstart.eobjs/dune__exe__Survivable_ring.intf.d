examples/survivable_ring.mli:
