examples/sdn_multipath.mli:
