examples/video_streaming.mli:
