examples/priority_routing.mli:
