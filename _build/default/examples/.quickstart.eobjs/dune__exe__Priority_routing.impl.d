examples/priority_routing.ml: Krsp_core Krsp_gen Krsp_graph Krsp_route Krsp_util List Printf
