examples/survivable_ring.ml: Format Krsp_core Krsp_gen Krsp_graph Krsp_util List Printf
