examples/quickstart.mli:
