examples/sdn_multipath.ml: Krsp_core Krsp_gen Krsp_graph Krsp_util List Printf
