examples/quickstart.ml: Format Krsp_core Krsp_graph Printf
