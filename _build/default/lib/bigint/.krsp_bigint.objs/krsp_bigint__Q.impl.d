lib/bigint/q.ml: Bigint Format
