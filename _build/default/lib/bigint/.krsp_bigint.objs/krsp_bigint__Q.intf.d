lib/bigint/q.mli: Bigint Format
