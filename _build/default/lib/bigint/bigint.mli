(** Arbitrary-precision signed integers, hand-rolled.

    The exact rational simplex ({!module:Simplex}) needs integers whose
    magnitude can exceed 63 bits during pivoting; no bignum library is
    assumed to be installed, so this module provides a compact sign-magnitude
    implementation with base-2{^30} limbs. It favours simplicity and
    obvious correctness over peak speed: division is binary long division and
    gcd is the binary (Stein) algorithm, both of which are trivially
    auditable. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val to_int : t -> int
(** Raises [Failure] if the value does not fit in a native [int]. *)

val to_int_opt : t -> int option
val of_string : string -> t
(** Decimal, optionally signed. Raises [Failure] on malformed input. *)

val to_string : t -> string

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [|r| < |b|] and [r] carrying
    the sign of [a] (truncated division, like OCaml's [/] and [mod]).
    Raises [Division_by_zero]. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Non-negative gcd; [gcd zero zero = zero]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift on the magnitude (logical for non-negatives; for
    negatives it shifts the magnitude, i.e. rounds toward zero). *)

val is_even : t -> bool
val min : t -> t -> t
val max : t -> t -> t
val pow : t -> int -> t
(** [pow base e] for [e >= 0]. *)

val to_float : t -> float
val hash : t -> int
val pp : Format.formatter -> t -> unit
