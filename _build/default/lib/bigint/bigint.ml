(* Sign-magnitude representation. [mag] is little-endian in base 2^30 with no
   trailing zero limbs; [mag] is empty exactly when [sign = 0]. All magnitude
   helpers below work on bare limb arrays and keep that normal form. *)

type t = { sign : int; mag : int array }

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

let zero = { sign = 0; mag = [||] }

let normalize_mag mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length mag then mag else Array.sub mag 0 !n

let make sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let rec limbs acc v = if v = 0 then acc else limbs ((v land base_mask) :: acc) (v lsr base_bits) in
    if n = min_int then
      (* min_int has no positive counterpart; split off the low limb first
         (both [-(n mod base)] and [-(n / base)] are representable). *)
      let lo = -(n mod base) and hi = -(n / base) in
      make (-1) (Array.of_list (lo :: List.rev (limbs [] hi)))
    else
      make (if n > 0 then 1 else -1) (Array.of_list (List.rev (limbs [] (abs n))))
  end

let one = of_int 1
let minus_one = of_int (-1)

let sign t = t.sign
let is_zero t = t.sign = 0

(* Magnitude comparison: -1, 0, 1. *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else if x.sign >= 0 then cmp_mag x.mag y.mag
  else cmp_mag y.mag x.mag

let equal x y = compare x y = 0

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then make x.sign (add_mag x.mag y.mag)
  else begin
    match cmp_mag x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> make x.sign (sub_mag x.mag y.mag)
    | _ -> make y.sign (sub_mag y.mag x.mag)
  end

let sub x y = add x (neg y)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai, b.(j) < 2^30 so the product fits comfortably in 63 bits. *)
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land base_mask;
        carry := s lsr base_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    r
  end

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else make (x.sign * y.sign) (mul_mag x.mag y.mag)

let shift_left_mag a k =
  if Array.length a = 0 || k = 0 then Array.copy a
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land base_mask);
      r.(i + limb_shift + 1) <- r.(i + limb_shift + 1) lor (v lsr base_bits)
    done;
    r
  end

let shift_right_mag a k =
  let limb_shift = k / base_bits and bit_shift = k mod base_bits in
  let la = Array.length a in
  if limb_shift >= la then [||]
  else begin
    let lr = la - limb_shift in
    let r = Array.make lr 0 in
    for i = 0 to lr - 1 do
      let lo = a.(i + limb_shift) lsr bit_shift in
      let hi =
        if bit_shift = 0 || i + limb_shift + 1 >= la then 0
        else a.(i + limb_shift + 1) lsl (base_bits - bit_shift) land base_mask
      in
      r.(i) <- lo lor hi
    done;
    r
  end

let shift_left t k =
  assert (k >= 0);
  if t.sign = 0 then zero else make t.sign (shift_left_mag t.mag k)

let shift_right t k =
  assert (k >= 0);
  if t.sign = 0 then zero else make t.sign (shift_right_mag t.mag k)

let bit_length_mag a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width n acc = if n = 0 then acc else width (n lsr 1) (acc + 1) in
    ((la - 1) * base_bits) + width top 0
  end

(* Binary long division on magnitudes: O(bits(a) * limbs(a)). Slow but
   simple; sufficient for the coefficient sizes the simplex produces on the
   instance sizes we solve exactly. *)
let divmod_mag a b =
  assert (Array.length b > 0);
  if cmp_mag a b < 0 then ([||], Array.copy a)
  else begin
    let bits = bit_length_mag a in
    let q = Array.make (Array.length a) 0 in
    let r = ref [||] in
    for i = bits - 1 downto 0 do
      let bit = (a.(i / base_bits) lsr (i mod base_bits)) land 1 in
      let r' = shift_left_mag !r 1 in
      if bit = 1 then
        if Array.length r' = 0 then r := [| 1 |]
        else begin
          r'.(0) <- r'.(0) lor 1;
          r := normalize_mag r'
        end
      else r := normalize_mag r';
      if cmp_mag !r b >= 0 then begin
        r := normalize_mag (sub_mag !r b);
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (q, !r)
  end

let divmod x y =
  if y.sign = 0 then raise Division_by_zero;
  if x.sign = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag x.mag y.mag in
    (make (x.sign * y.sign) qm, make x.sign rm)
  end

let div x y = fst (divmod x y)
let rem x y = snd (divmod x y)

let is_even t = t.sign = 0 || t.mag.(0) land 1 = 0

(* Binary (Stein) gcd on magnitudes: avoids the slow division. *)
let gcd x y =
  let half a = normalize_mag (shift_right_mag a 1) in
  let rec go a b shift =
    (* invariant: a, b are normalized magnitudes *)
    if Array.length a = 0 then shift_left_mag b shift
    else if Array.length b = 0 then shift_left_mag a shift
    else begin
      let a_even = a.(0) land 1 = 0 and b_even = b.(0) land 1 = 0 in
      if a_even && b_even then go (half a) (half b) (shift + 1)
      else if a_even then go (half a) b shift
      else if b_even then go a (half b) shift
      else begin
        match cmp_mag a b with
        | 0 -> shift_left_mag a shift
        | c when c > 0 -> go (half (normalize_mag (sub_mag a b))) b shift
        | _ -> go a (half (normalize_mag (sub_mag b a))) shift
      end
    end
  in
  if x.sign = 0 then abs y
  else if y.sign = 0 then abs x
  else make 1 (go x.mag y.mag 0)

let max_int_big = of_int max_int
let min_int_big = of_int min_int

let to_int_opt t =
  if compare t max_int_big > 0 || compare t min_int_big < 0 then None
  else begin
    let v = Array.fold_right (fun limb acc -> (acc lsl base_bits) lor limb) t.mag 0 in
    Some (if t.sign < 0 then -v else v)
  end

let to_int t =
  match to_int_opt t with
  | Some v -> v
  | None -> failwith "Bigint.to_int: overflow"

let ten = of_int 10

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go v = if is_zero v then () else begin
      let q, r = divmod v ten in
      go q;
      Buffer.add_char buf (Char.chr (Char.code '0' + to_int r))
    end
    in
    go (abs t);
    (if t.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then failwith "Bigint.of_string: empty";
  let sign_neg, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= n then failwith "Bigint.of_string: no digits";
  let acc = ref zero in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then failwith "Bigint.of_string: invalid digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if sign_neg then neg !acc else !acc

let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let pow b e =
  assert (e >= 0);
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

let to_float t =
  let m =
    Array.to_list t.mag
    |> List.rev
    |> List.fold_left (fun acc limb -> (acc *. float_of_int base) +. float_of_int limb) 0.
  in
  if t.sign < 0 then -.m else m

let hash t = Hashtbl.hash (t.sign, t.mag)

let pp fmt t = Format.pp_print_string fmt (to_string t)
