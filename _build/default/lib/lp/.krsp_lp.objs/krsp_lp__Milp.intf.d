lib/lp/milp.mli: Krsp_bigint Lp Q
