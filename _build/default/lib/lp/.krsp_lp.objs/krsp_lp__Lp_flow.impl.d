lib/lp/lp_flow.ml: Array Krsp_bigint Krsp_graph List Lp Printf Q Simplex
