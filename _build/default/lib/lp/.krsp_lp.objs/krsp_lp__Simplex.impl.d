lib/lp/simplex.ml: Array Krsp_bigint List Lp Q
