lib/lp/milp.ml: Array Krsp_bigint List Lp Q Simplex
