lib/lp/simplex.mli: Krsp_bigint Lp Q
