lib/lp/lp_flow.mli: Krsp_bigint Krsp_graph Lp Q
