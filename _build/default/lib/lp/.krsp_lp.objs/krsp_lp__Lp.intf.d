lib/lp/lp.mli: Krsp_bigint Q
