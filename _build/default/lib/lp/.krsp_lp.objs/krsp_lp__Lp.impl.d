lib/lp/lp.ml: Hashtbl Krsp_bigint List Option Q
