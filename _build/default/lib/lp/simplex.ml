open Krsp_bigint

type solution = { objective : Q.t; values : Q.t array }

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded

(* Tableau layout:
   - rows 0..m-1: constraints in the form  B^{-1}A x = B^{-1}b,
     columns 0..ncols-1 are variables (original, then slack/surplus, then
     artificial), column ncols is the rhs;
   - basis.(i) is the variable index basic in row i.
   All entries are exact rationals. *)

type tableau = {
  m : int;
  ncols : int;
  a : Q.t array array; (* m rows, ncols+1 columns *)
  basis : int array;
}

let pivot t ~row ~col =
  let piv = t.a.(row).(col) in
  assert (Q.sign piv <> 0);
  let inv = Q.inv piv in
  for j = 0 to t.ncols do
    t.a.(row).(j) <- Q.mul t.a.(row).(j) inv
  done;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let factor = t.a.(i).(col) in
      if Q.sign factor <> 0 then
        for j = 0 to t.ncols do
          t.a.(i).(j) <- Q.sub t.a.(i).(j) (Q.mul factor t.a.(row).(j))
        done
    end
  done;
  t.basis.(row) <- col

(* Reduced costs for objective vector [c] (length ncols) given the current
   basis: z_j = c_j - c_B · B^{-1}A_j. Returns the reduced-cost row and the
   current objective value c_B · B^{-1}b. *)
let reduced_costs t c =
  let red = Array.make t.ncols Q.zero in
  let obj = ref Q.zero in
  (* start from c, subtract c_basis(i) * row_i *)
  Array.blit c 0 red 0 t.ncols;
  for i = 0 to t.m - 1 do
    let cb = c.(t.basis.(i)) in
    if Q.sign cb <> 0 then begin
      for j = 0 to t.ncols - 1 do
        red.(j) <- Q.sub red.(j) (Q.mul cb t.a.(i).(j))
      done;
      obj := Q.add !obj (Q.mul cb t.a.(i).(t.ncols))
    end
  done;
  (red, !obj)

(* One phase of the simplex: minimise c·x from the current basis. [allowed j]
   gates which columns may enter (used to lock out artificials in phase 2).
   Returns [`Optimal] or [`Unbounded]. Bland's rule throughout. *)
let run_phase t c ~allowed =
  let rec iterate () =
    let red, _ = reduced_costs t c in
    (* entering column: smallest index with negative reduced cost *)
    let entering = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if allowed j && Q.sign red.(j) < 0 then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering = -1 then `Optimal
    else begin
      let col = !entering in
      (* ratio test: min rhs_i / a_i,col over a_i,col > 0; ties by smallest
         basis index (Bland) *)
      let leave = ref (-1) in
      let best = ref Q.zero in
      for i = 0 to t.m - 1 do
        if Q.sign t.a.(i).(col) > 0 then begin
          let ratio = Q.div t.a.(i).(t.ncols) t.a.(i).(col) in
          if
            !leave = -1
            || Q.compare ratio !best < 0
            || (Q.equal ratio !best && t.basis.(i) < t.basis.(!leave))
          then begin
            leave := i;
            best := ratio
          end
        end
      done;
      if !leave = -1 then `Unbounded
      else begin
        pivot t ~row:!leave ~col;
        iterate ()
      end
    end
  in
  iterate ()

let solve lp =
  let nvars = Lp.num_vars lp in
  let rows = Lp.rows lp in
  let m = List.length rows in
  (* normalise rhs >= 0 by flipping rows *)
  let rows =
    List.map
      (fun (terms, rel, rhs) ->
        if Q.sign rhs < 0 then
          ( List.map (fun (v, q) -> (v, Q.neg q)) terms,
            (match rel with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq),
            Q.neg rhs )
        else (terms, rel, rhs))
      rows
  in
  (* count slack and artificial columns *)
  let nslack = List.length (List.filter (fun (_, rel, _) -> rel <> Lp.Eq) rows) in
  let nartif =
    List.length (List.filter (fun (_, rel, _) -> rel = Lp.Eq || rel = Lp.Ge) rows)
  in
  let ncols = nvars + nslack + nartif in
  let a = Array.init m (fun _ -> Array.make (ncols + 1) Q.zero) in
  let basis = Array.make m (-1) in
  let slack_base = nvars in
  let artif_base = nvars + nslack in
  let next_slack = ref 0 and next_artif = ref 0 in
  List.iteri
    (fun i (terms, rel, rhs) ->
      List.iter (fun (v, q) -> a.(i).(v) <- Q.add a.(i).(v) q) terms;
      a.(i).(ncols) <- rhs;
      (match rel with
      | Lp.Le ->
        let s = slack_base + !next_slack in
        incr next_slack;
        a.(i).(s) <- Q.one;
        basis.(i) <- s
      | Lp.Ge ->
        let s = slack_base + !next_slack in
        incr next_slack;
        a.(i).(s) <- Q.minus_one;
        let art = artif_base + !next_artif in
        incr next_artif;
        a.(i).(art) <- Q.one;
        basis.(i) <- art
      | Lp.Eq ->
        let art = artif_base + !next_artif in
        incr next_artif;
        a.(i).(art) <- Q.one;
        basis.(i) <- art))
    rows;
  let t = { m; ncols; a; basis } in
  (* phase 1: minimise sum of artificials *)
  let c1 = Array.make ncols Q.zero in
  for j = artif_base to ncols - 1 do
    c1.(j) <- Q.one
  done;
  (match run_phase t c1 ~allowed:(fun _ -> true) with
  | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
  | `Optimal -> ());
  let _, phase1_obj = reduced_costs t c1 in
  if Q.sign phase1_obj > 0 then Infeasible
  else begin
    (* drive remaining zero-valued artificials out of the basis when
       possible; rows where no real column has a nonzero coefficient are
       redundant and harmless (the artificial stays basic at zero and is
       locked out of phase 2). *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= artif_base then begin
        let found = ref (-1) in
        (try
           for j = 0 to artif_base - 1 do
             if Q.sign t.a.(i).(j) <> 0 then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then pivot t ~row:i ~col:!found
      end
    done;
    (* phase 2: original objective, artificial columns locked out *)
    let c2 = Array.make ncols Q.zero in
    for v = 0 to nvars - 1 do
      c2.(v) <- Lp.objective lp v
    done;
    match run_phase t c2 ~allowed:(fun j -> j < artif_base) with
    | `Unbounded -> Unbounded
    | `Optimal ->
      let values = Array.make nvars Q.zero in
      for i = 0 to m - 1 do
        if t.basis.(i) < nvars then values.(t.basis.(i)) <- t.a.(i).(ncols)
      done;
      let _, obj = reduced_costs t c2 in
      Optimal { objective = obj; values }
  end
