(** Exact two-phase primal simplex over rationals.

    Dense tableau, Bland's anti-cycling rule, {!Krsp_bigint.Q} arithmetic
    throughout — slow but exact, which is what the correctness arguments in
    the paper's Lemma 14/Theorem 16 need (a "cycle with negative delay" must
    not be a rounding artifact). Problem sizes are kept small by the layered
    auxiliary-graph construction, so exactness is affordable. *)

open Krsp_bigint

type solution = {
  objective : Q.t;
  values : Q.t array;  (** optimal value per {!Lp.var}, a basic solution *)
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded

val solve : Lp.t -> outcome
(** Minimise the LP. The returned assignment is a vertex of the feasible
    polyhedron (basic optimal solution), which the LP-rounding steps of the
    paper rely on. *)
