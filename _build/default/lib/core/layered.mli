(** Auxiliary layered graphs [H_v^+(B)] / [H_v^-(B)] — Algorithm 2.

    [H_v^+(B)] has [B+1] copies [u⁰ … u^B] of every residual vertex [u];
    a residual edge of cost [c] connects copies [uⁱ → w^{i+c}] (all [i] that
    stay inside [0..B]), carrying the residual delay; and closing edges
    [vⁱ → v⁰] (delay 0, [i ≥ 1]) tie off cycles through the root [v] of
    positive total cost exactly [i]. [H_v^-(B)] instead closes with
    [vⁱ → v^B], capturing cycles of negative cost [i − B]. This realises the
    Lemma 15 bijection: a simple cycle of the residual graph through [v] with
    cost in [0, B] (resp. [-B, 0]) is a cycle of [H_v^+(B)] (resp.
    [H_v^-(B)]), and every [H] cycle maps back to a set of residual cycles
    with cost in [-B, B]. *)

module G := Krsp_graph.Digraph

type side = Plus | Minus

type t = {
  graph : G.t;
      (** the layered graph; edge costs are the residual costs (0 on closing
          edges), delays the residual delays (0 on closing edges) *)
  res_edge : int array;  (** H edge → residual edge id, or [-1] for closing edges *)
  root : G.vertex;
  bound : int;
  side : side;
}

val vertex : t -> G.vertex -> level:int -> G.vertex
(** Id of copy [u^level] inside the layered graph. *)

val build : Residual.t -> root:G.vertex -> bound:int -> side:side -> t
(** Requires [bound >= 1]. *)

val to_residual_edges : t -> G.edge list -> G.edge list
(** Maps an H-edge list to the underlying residual edges, dropping closing
    edges. *)
