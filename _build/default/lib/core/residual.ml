module G = Krsp_graph.Digraph
module Path = Krsp_graph.Path

type t = { graph : G.t; base_edge : int array; is_reversed : bool array }

let build g ~paths =
  if not (Path.edge_disjoint paths) then invalid_arg "Residual.build: paths share edges";
  let on_path = Array.make (G.m g) false in
  List.iter (fun p -> List.iter (fun e -> on_path.(e) <- true) p) paths;
  let rg = G.create ~expected_edges:(G.m g) ~n:(G.n g) () in
  let base_edge = Array.make (G.m g) (-1) in
  let is_reversed = Array.make (G.m g) false in
  G.iter_edges g (fun e ->
      let re =
        if on_path.(e) then
          G.add_edge rg ~src:(G.dst g e) ~dst:(G.src g e) ~cost:(-G.cost g e)
            ~delay:(-G.delay g e)
        else G.add_edge rg ~src:(G.src g e) ~dst:(G.dst g e) ~cost:(G.cost g e) ~delay:(G.delay g e)
      in
      base_edge.(re) <- e;
      is_reversed.(re) <- on_path.(e));
  { graph = rg; base_edge; is_reversed }

let cost t e = G.cost t.graph e
let delay t e = G.delay t.graph e

let apply_cycle t ~current ~cycle =
  let in_current = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace in_current e ()) current;
  List.iter
    (fun re ->
      let e = t.base_edge.(re) in
      if t.is_reversed.(re) then begin
        if not (Hashtbl.mem in_current e) then
          invalid_arg "Residual.apply_cycle: reversing an unused edge";
        Hashtbl.remove in_current e
      end
      else begin
        if Hashtbl.mem in_current e then
          invalid_arg "Residual.apply_cycle: adding an edge already in use";
        Hashtbl.replace in_current e ()
      end)
    cycle;
  Hashtbl.fold (fun e () acc -> e :: acc) in_current []

let cycle_cost t cyc = List.fold_left (fun acc e -> acc + cost t e) 0 cyc
let cycle_delay t cyc = List.fold_left (fun acc e -> acc + delay t e) 0 cyc
