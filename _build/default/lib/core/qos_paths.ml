module G = Krsp_graph.Digraph
module Path = Krsp_graph.Path

type quality =
  | Strict
  | Average

type outcome =
  | Paths of Instance.solution * quality
  | No_k_disjoint_paths
  | Relaxation_infeasible of int

let max_path_delay t sol =
  List.fold_left (fun acc p -> max acc (Path.delay t.Instance.graph p)) 0 sol.Instance.paths

(* The ⊕ machinery returns edge *sets*; different decompositions of the same
   set can have very different per-path delays. Try a delay-aware
   re-decomposition: peel the remaining edge set along minimum-delay paths
   first (greedy), keeping the same total weights. *)
let rebalance t sol =
  let g = t.Instance.graph in
  let in_set = Array.make (G.m g) false in
  List.iter (fun e -> in_set.(e) <- true) (Instance.edge_set sol);
  let rec peel acc k =
    if k = 0 then Some (List.rev acc)
    else begin
      match
        Krsp_graph.Dijkstra.shortest_path g ~weight:(G.delay g)
          ~disabled:(fun e -> not in_set.(e))
          ~src:t.Instance.src ~dst:t.Instance.dst ()
      with
      | None -> None
      | Some (_, p) ->
        List.iter (fun e -> in_set.(e) <- false) p;
        peel (p :: acc) (k - 1)
    end
  in
  match peel [] t.Instance.k with
  | Some paths when Instance.is_structurally_valid t paths ->
    Instance.solution_of_paths t paths
  | _ -> sol

let solve g ~src ~dst ~k ~per_path_delay ?epsilon () =
  let budget = k * per_path_delay in
  let t = Instance.create g ~src ~dst ~k ~delay_bound:budget in
  let solved =
    match epsilon with
    | None -> (
      match Krsp.solve t () with
      | Ok (sol, _) -> Ok sol
      | Error e -> Error e)
    | Some eps -> (
      match Scaling.solve t ~epsilon1:eps ~epsilon2:eps () with
      | Ok r -> Ok r.Scaling.solution
      | Error e -> Error e)
  in
  match solved with
  | Error Krsp.No_k_disjoint_paths -> No_k_disjoint_paths
  | Error (Krsp.Delay_bound_unreachable d) -> Relaxation_infeasible d
  | Ok sol ->
    let sol = if max_path_delay t sol > per_path_delay then rebalance t sol else sol in
    let quality = if max_path_delay t sol <= per_path_delay then Strict else Average in
    Paths (sol, quality)
