module G = Krsp_graph.Digraph
module Path = Krsp_graph.Path

type result = {
  paths : Path.t list;
  longer : int;
  total : int;
  lower_bound : int;
}

(* min-sum via unit-capacity min-cost flow on the given weight *)
let min_sum_pair g ~weight ~src ~dst =
  match Krsp_flow.Mcmf.min_cost_flow g ~capacity:(fun _ -> 1) ~cost:weight ~src ~dst ~amount:2 with
  | None -> None
  | Some { Krsp_flow.Mcmf.flow; _ } ->
    let edges = G.fold_edges g ~init:[] ~f:(fun acc e -> if flow.(e) > 0 then e :: acc else acc) in
    let paths, _ = Krsp_graph.Walk.decompose_st g ~src ~dst ~k:2 edges in
    Some paths

let two_approx g ~weight ~src ~dst =
  G.iter_edges g (fun e -> if weight e < 0 then invalid_arg "Minmax: negative weight");
  match min_sum_pair g ~weight ~src ~dst with
  | None -> None
  | Some paths ->
    let lengths = List.map (fun p -> List.fold_left (fun a e -> a + weight e) 0 p) paths in
    let total = List.fold_left ( + ) 0 lengths in
    let longer = List.fold_left max 0 lengths in
    (* OPT_minmax >= total/2 because both optimal paths are <= OPT and their
       total >= the min-sum total *)
    Some { paths; longer; total; lower_bound = (total + 1) / 2 }

let length_bounded g ~weight ~src ~dst ~bound =
  match two_approx g ~weight ~src ~dst with
  | None -> `No_certified
  | Some r ->
    if r.longer <= bound then `Yes r.paths
    else if r.total > 2 * bound then
      (* two paths of length <= bound would give a total <= 2·bound,
         contradicting min-sum optimality *)
      `No_certified
    else `Unknown
