(** kRSP problem instances and solutions (Definition 2 of the paper).

    An instance is a digraph with non-negative integral costs and delays, a
    source/sink pair, the number [k] of required edge-disjoint paths, and the
    bound [delay_bound] on the paths' *total* delay. A solution is [k]
    edge-disjoint [s→t] paths; {!is_feasible} checks the delay bound too. *)

module G := Krsp_graph.Digraph

type t = {
  graph : G.t;
  src : G.vertex;
  dst : G.vertex;
  k : int;
  delay_bound : int;
}

val create : G.t -> src:G.vertex -> dst:G.vertex -> k:int -> delay_bound:int -> t
(** Validates: [src ≠ dst], [k ≥ 1], [delay_bound ≥ 0], all costs and delays
    non-negative. Raises [Invalid_argument] otherwise. *)

type solution = {
  paths : Krsp_graph.Path.t list;
  cost : int;  (** Σ over the k paths *)
  delay : int;
}

val solution_of_paths : t -> Krsp_graph.Path.t list -> solution
(** Computes cost/delay sums. Raises [Invalid_argument] if the paths are not
    [k] valid edge-disjoint [src→dst] paths of the instance graph. *)

val is_structurally_valid : t -> Krsp_graph.Path.t list -> bool
(** [k] valid edge-disjoint [src→dst] paths (delay bound not checked). *)

val is_feasible : t -> solution -> bool
(** Structural validity and [delay ≤ delay_bound]. *)

val edge_set : solution -> Krsp_graph.Digraph.edge list
(** All edges of the solution, concatenated. *)

val connectivity_ok : t -> bool
(** True iff the graph carries [k] edge-disjoint [src→dst] paths at all. *)

val min_possible_delay : t -> int option
(** The smallest achievable total delay over any [k] disjoint paths
    (min-delay [k]-flow); [None] when {!connectivity_ok} fails. An instance
    is feasible iff this is [Some d] with [d ≤ delay_bound]. *)

val pp_solution : t -> Format.formatter -> solution -> unit
