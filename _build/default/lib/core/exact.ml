module G = Krsp_graph.Digraph
module Path = Krsp_graph.Path

type result = { cost : int; delay : int; paths : Path.t list }

(* Branch and bound: build the k paths one after another; each path is
   enumerated by DFS over simple extensions. To avoid enumerating the same
   *set* of paths repeatedly, successive paths must have strictly increasing
   first-edge ids (disjointness makes the first edge unique per path, so
   every set is produced exactly once, in sorted order). Pruning: current
   cost against the incumbent, plus min-cost and min-delay (k−i)-flow bounds
   on the remaining graph after each finished path. *)
let solve ?(node_limit = 5_000_000) t =
  let g = t.Instance.graph in
  let src = t.Instance.src and dst = t.Instance.dst and k = t.Instance.k in
  let used = Array.make (G.m g) false in
  let best = ref None in
  let nodes = ref 0 in
  let bump () =
    incr nodes;
    if !nodes > node_limit then failwith "Exact.solve: node limit"
  in
  let beaten cost = match !best with Some (bc, _, _) -> cost >= bc | None -> false in
  let remaining_bound ~weight ~need =
    match
      Krsp_flow.Mcmf.min_cost_flow g
        ~capacity:(fun e -> if used.(e) then 0 else 1)
        ~cost:weight ~src ~dst ~amount:need
    with
    | None -> None
    | Some r -> Some r.Krsp_flow.Mcmf.cost
  in
  let rec extend_path i first_edge path_rev acc_paths acc_cost acc_delay v visited =
    bump ();
    if acc_delay > t.Instance.delay_bound || beaten acc_cost then ()
    else if v = dst && path_rev <> [] then
      finish_path i (List.rev path_rev) acc_paths acc_cost acc_delay
    else
      G.iter_out g v (fun e ->
          if not used.(e) then begin
            let w = G.dst g e in
            let first_ok = match path_rev with [] -> e > first_edge | _ :: _ -> true in
            if first_ok && not (List.mem w visited) then begin
              used.(e) <- true;
              extend_path i first_edge (e :: path_rev) acc_paths (acc_cost + G.cost g e)
                (acc_delay + G.delay g e) w (w :: visited);
              used.(e) <- false
            end
          end)
  and finish_path i path acc_paths acc_cost acc_delay =
    let acc_paths = path :: acc_paths in
    if i + 1 = k then begin
      if not (beaten acc_cost) then best := Some (acc_cost, acc_delay, List.rev acc_paths)
    end
    else begin
      let need = k - (i + 1) in
      match remaining_bound ~weight:(G.delay g) ~need with
      | None -> ()
      | Some dmin ->
        if acc_delay + dmin <= t.Instance.delay_bound then begin
          match remaining_bound ~weight:(G.cost g) ~need with
          | None -> ()
          | Some cmin ->
            if not (beaten (acc_cost + cmin)) then begin
              let first = match path with e :: _ -> e | [] -> assert false in
              extend_path (i + 1) first [] acc_paths acc_cost acc_delay src [ src ]
            end
        end
    end
  in
  extend_path 0 (-1) [] [] 0 0 src [ src ];
  Option.map (fun (cost, delay, paths) -> { cost; delay; paths }) !best
