type kind = Type0 | Type1 | Type2

type context = { delta_d : int; delta_c : int; cost_cap : int }

let classify ctx ~cost ~delay =
  if (delay < 0 && cost <= 0) || (delay <= 0 && cost < 0) then Some Type0
  else if ctx.delta_c <= 0 then
    (* all of the guess's cost budget is spent: only type-0 cycles are safe *)
    None
  else begin
    let ratio_ok = delay * ctx.delta_c <= ctx.delta_d * cost in
    if delay < 0 && cost > 0 && cost <= ctx.cost_cap && ratio_ok then Some Type1
    else if delay >= 0 && cost < 0 && -cost <= ctx.cost_cap && ratio_ok then Some Type2
    else None
  end

let is_bicameral ctx ~cost ~delay = Option.is_some (classify ctx ~cost ~delay)

let compare_candidates ctx (c1, d1) (c2, d2) =
  let k1 = classify ctx ~cost:c1 ~delay:d1 and k2 = classify ctx ~cost:c2 ~delay:d2 in
  let rank = function Type0 -> 0 | Type1 -> 1 | Type2 -> 2 in
  match (k1, k2) with
  | None, None -> 0
  | Some _, None -> -1
  | None, Some _ -> 1
  | Some a, Some b when rank a <> rank b ->
    (* type-0 is free; type-1 makes delay progress; type-2 trades delay back
       for cost and is only a last resort (it alone cannot terminate the
       loop) *)
    compare (rank a) (rank b)
  | Some Type0, Some _ -> compare (d1, c1) (d2, c2)
  | Some Type1, Some _ ->
    (* most delay reduction first — any bicameral cycle preserves the
       Lemma 11 cost invariant, and big strides keep the iteration count
       low; ties broken by the steeper |d/c| ratio (Algorithm 3 step 2) *)
    if d1 <> d2 then compare d1 d2
    else begin
      let lhs = abs d1 * abs c2 and rhs = abs d2 * abs c1 in
      compare rhs lhs
    end
  | Some Type2, Some _ ->
    (* least delay damage per unit of cost refunded *)
    let lhs = abs d1 * abs c2 and rhs = abs d2 * abs c1 in
    compare lhs rhs
