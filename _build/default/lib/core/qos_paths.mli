(** The k disjoint QoS path problem (Definition 1 of the paper) — per-path
    delay bounds — via the paper's own reduction.

    Definition 1 asks for k disjoint paths with [d(Pᵢ) ≤ D] for *each* i.
    That problem is NP-hard even with all costs zero [16], so no algorithm
    can strictly obey the per-path constraint in polynomial time. The paper's
    §1 workaround is the definition of kRSP itself: solve the total-delay
    problem with budget [k·D] and "route the packages via the k paths
    according to their urgency priority". This module packages that
    reduction and reports honestly which guarantee the result carries:

    - [Strict]: every returned path individually meets [D] (it can happen,
      it just is not guaranteed);
    - [Average]: only the kRSP guarantee holds — the *average* path delay is
      ≤ D (total ≤ k·D), with a priority dispatch over the paths planned by
      {!Krsp_route.Priority_routing} in the caller's hands;
    - infeasibility certificates when even the relaxation has none. *)

type quality =
  | Strict  (** every path's delay ≤ D *)
  | Average  (** total delay ≤ k·D only *)

type outcome =
  | Paths of Instance.solution * quality
  | No_k_disjoint_paths
  | Relaxation_infeasible of int
      (** even total delay ≤ k·D is unachievable; payload = minimum total *)

val solve :
  Krsp_graph.Digraph.t ->
  src:Krsp_graph.Digraph.vertex ->
  dst:Krsp_graph.Digraph.vertex ->
  k:int ->
  per_path_delay:int ->
  ?epsilon:float ->
  unit ->
  outcome
(** Runs kRSP with budget [k·per_path_delay] (exact loop, or the Theorem 4
    scaling when [epsilon] is given), then post-checks the per-path bounds.
    Tries a cheap repair first: re-decomposing the solution's edge set can
    re-balance path delays at zero cost change. *)
