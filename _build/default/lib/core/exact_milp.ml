module G = Krsp_graph.Digraph
module Q = Krsp_bigint.Q

type result = { cost : int; delay : int; paths : Krsp_graph.Path.t list }

let solve ?(node_limit = 20_000) t =
  let g = t.Instance.graph in
  let { Krsp_lp.Lp_flow.lp; edge_var } =
    Krsp_lp.Lp_flow.build g ~src:t.Instance.src ~dst:t.Instance.dst ~k:t.Instance.k
      ~delay_bound:t.Instance.delay_bound
  in
  let binary = Array.to_list edge_var in
  match Krsp_lp.Milp.solve_binary lp ~binary ~node_limit () with
  | Krsp_lp.Milp.Infeasible -> None
  | Krsp_lp.Milp.Node_limit -> failwith "Exact_milp.solve: node limit"
  | Krsp_lp.Milp.Optimal { values; _ } ->
    let edges =
      G.fold_edges g ~init:[] ~f:(fun acc e ->
          if Q.equal values.(edge_var.(e)) Q.one then e :: acc else acc)
    in
    let paths, cycles =
      Krsp_graph.Walk.decompose_st g ~src:t.Instance.src ~dst:t.Instance.dst
        ~k:t.Instance.k edges
    in
    (* an optimal integral flow carries no positive-cost cycles; zero-weight
       ones are dropped by taking only the paths *)
    ignore cycles;
    let sol = Instance.solution_of_paths t paths in
    Some { cost = sol.Instance.cost; delay = sol.Instance.delay; paths }
