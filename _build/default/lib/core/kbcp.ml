module G = Krsp_graph.Digraph

type verdict =
  | Feasible of Instance.solution
  | Feasible_relaxed of Instance.solution * float * float
  | Infeasible_certified
  | Unknown

(* graph with cost and delay swapped, so the kRSP machinery can constrain the
   cost side; edge ids are preserved *)
let swap_weights g =
  fst (G.filter_map_edges g ~f:(fun e -> Some (G.delay g e, G.cost g e)))

let run_krsp g ~src ~dst ~k ~delay_bound ~epsilon =
  let t = Instance.create g ~src ~dst ~k ~delay_bound in
  match epsilon with
  | None -> (
    match Krsp.solve t () with
    | Ok (sol, _) -> Some sol
    | Error _ -> None)
  | Some eps -> (
    match Scaling.solve t ~epsilon1:eps ~epsilon2:eps () with
    | Ok r -> Some r.Scaling.solution
    | Error _ -> None)

let solve g ~src ~dst ~k ~cost_bound ~delay_bound ?epsilon () =
  if not (Krsp_graph.Bfs.edge_connectivity_at_least g ~src ~dst ~k) then
    Infeasible_certified
  else begin
    (* quick certificates: if even the unconstrained minimum of one criterion
       busts its budget, the instance is infeasible *)
    let min_cost =
      Krsp_flow.Mcmf.min_cost_flow g ~capacity:(fun _ -> 1) ~cost:(G.cost g) ~src ~dst
        ~amount:k
    in
    let min_delay =
      Krsp_flow.Mcmf.min_cost_flow g ~capacity:(fun _ -> 1) ~cost:(G.delay g) ~src ~dst
        ~amount:k
    in
    match (min_cost, min_delay) with
    | None, _ | _, None -> Infeasible_certified
    | Some mc, Some md ->
      if mc.Krsp_flow.Mcmf.cost > cost_bound || md.Krsp_flow.Mcmf.cost > delay_bound then
        Infeasible_certified
      else begin
        let evaluate sol =
          let cost_slack = float_of_int sol.Instance.cost /. float_of_int (max 1 cost_bound) in
          let delay_slack =
            float_of_int sol.Instance.delay /. float_of_int (max 1 delay_bound)
          in
          if cost_slack <= 1. && delay_slack <= 1. then Feasible sol
          else Feasible_relaxed (sol, cost_slack, delay_slack)
        in
        (* orientation 1: minimise cost under the delay budget *)
        let forward = run_krsp g ~src ~dst ~k ~delay_bound ~epsilon in
        (* orientation 2: minimise delay under the cost budget *)
        let backward =
          Option.map
            (fun sol ->
              (* re-evaluate the swapped solution at the original weights:
                 edge ids are preserved by [swap_weights] *)
              let t = Instance.create g ~src ~dst ~k ~delay_bound:max_int in
              Instance.solution_of_paths t sol.Instance.paths)
            (run_krsp (swap_weights g) ~src ~dst ~k ~delay_bound:cost_bound ~epsilon)
        in
        let verdicts =
          List.filter_map (Option.map evaluate) [ forward; backward ]
        in
        let score = function
          | Feasible _ -> 0.
          | Feasible_relaxed (_, cs, ds) -> Float.max cs ds
          | Infeasible_certified | Unknown -> infinity
        in
        match List.sort (fun a b -> compare (score a) (score b)) verdicts with
        | best :: _ -> best
        | [] -> Unknown
      end
  end
