(** Bicameral cycle classification — Definition 10.

    Given the current gap to the target ([ΔD = D − Σ d(Pᵢ) < 0] while the
    solution is over budget, [ΔC = C_guess − Σ c(Pᵢ)], assumed positive
    until the final iteration) and the cost cap [C_guess] (standing in for
    [C_OPT], see DESIGN.md on the guess search), a residual cycle [O] with
    totals [(c, d)] is

    - {b type-0} when [d < 0 ∧ c ≤ 0] or [d ≤ 0 ∧ c < 0] — free improvement;
    - {b type-1} when [d < 0 ∧ 0 < c ≤ C_guess ∧ d/c ≤ ΔD/ΔC];
    - {b type-2} when [d ≥ 0 ∧ −C_guess ≤ c < 0 ∧ d/c ≥ ΔD/ΔC].

    With [ΔC > 0], both ratio conditions cross-multiply to the single
    inequality [d·ΔC ≤ ΔD·c], which is how we evaluate them (exactly, in
    integers — no rationals needed). *)

type kind = Type0 | Type1 | Type2

type context = {
  delta_d : int;  (** [D − current delay]; negative while improving *)
  delta_c : int;  (** [C_guess − current cost] *)
  cost_cap : int;  (** the [C_OPT] stand-in bounding [|c(O)|] *)
}

val classify : context -> cost:int -> delay:int -> kind option
(** [None] when the cycle is not bicameral in this context. *)

val is_bicameral : context -> cost:int -> delay:int -> bool

val compare_candidates :
  context -> (int * int) -> (int * int) -> int
(** Preference order between two bicameral [(cost, delay)] candidates for
    Algorithm 1: type-0 first (more negative delay preferred), then the
    better delay-per-cost ratio as in Algorithm 3 step 3. Negative result
    means the first candidate is preferred. *)
