module G = Krsp_graph.Digraph
module Path = Krsp_graph.Path

type t = { graph : G.t; src : G.vertex; dst : G.vertex; k : int; delay_bound : int }

let create graph ~src ~dst ~k ~delay_bound =
  if src = dst then invalid_arg "Instance.create: src = dst";
  if k < 1 then invalid_arg "Instance.create: k < 1";
  if delay_bound < 0 then invalid_arg "Instance.create: negative delay bound";
  if src < 0 || src >= G.n graph || dst < 0 || dst >= G.n graph then
    invalid_arg "Instance.create: endpoint out of range";
  G.iter_edges graph (fun e ->
      if G.cost graph e < 0 || G.delay graph e < 0 then
        invalid_arg "Instance.create: negative edge weight");
  { graph; src; dst; k; delay_bound }

type solution = { paths : Path.t list; cost : int; delay : int }

let is_structurally_valid t paths =
  List.length paths = t.k
  && Path.edge_disjoint paths
  && List.for_all (fun p -> Path.is_valid t.graph ~src:t.src ~dst:t.dst p && p <> []) paths

let solution_of_paths t paths =
  if not (is_structurally_valid t paths) then
    invalid_arg "Instance.solution_of_paths: not k disjoint st-paths";
  let cost = List.fold_left (fun acc p -> acc + Path.cost t.graph p) 0 paths in
  let delay = List.fold_left (fun acc p -> acc + Path.delay t.graph p) 0 paths in
  { paths; cost; delay }

let is_feasible t s = is_structurally_valid t s.paths && s.delay <= t.delay_bound

let edge_set s = List.concat s.paths

let connectivity_ok t =
  Krsp_graph.Bfs.edge_connectivity_at_least t.graph ~src:t.src ~dst:t.dst ~k:t.k

let min_possible_delay t =
  Option.map
    (fun r -> r.Krsp_flow.Mcmf.cost)
    (Krsp_flow.Mcmf.min_cost_flow t.graph
       ~capacity:(fun _ -> 1)
       ~cost:(G.delay t.graph) ~src:t.src ~dst:t.dst ~amount:t.k)

let pp_solution t fmt s =
  Format.fprintf fmt "cost=%d delay=%d (bound %d)@." s.cost s.delay t.delay_bound;
  List.iteri
    (fun i p -> Format.fprintf fmt "  P%d: %a@." (i + 1) (Path.pp t.graph) p)
    s.paths
