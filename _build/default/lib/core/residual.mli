(** Residual graphs with respect to a set of disjoint paths — Definition 6.

    [G̃ = G ∪ (∪ᵢ E(P̄ᵢ)) ∖ ∪ᵢ E(Pᵢ)]: every edge used by the current paths
    is replaced by its reversal carrying *negated* cost and delay (both of
    them — the point of the paper, in contrast to [12, 18] which zero the
    reversed cost). The result is a multigraph; parallel arcs with different
    weights are preserved. *)

module G := Krsp_graph.Digraph

type t = {
  graph : G.t;  (** the residual multigraph, same vertex ids as the base *)
  base_edge : int array;  (** residual edge id → base-graph edge id *)
  is_reversed : bool array;  (** residual edge id → was it a reversed path edge *)
}

val build : G.t -> paths:Krsp_graph.Path.t list -> t
(** Raises [Invalid_argument] if the paths are not edge-disjoint. *)

val cost : t -> G.edge -> int
(** Cost of a residual edge (negated for reversed ones). Same as
    [G.cost t.graph e]; provided for readability. *)

val delay : t -> G.edge -> int

val apply_cycle : t -> current:G.edge list -> cycle:G.edge list -> G.edge list
(** The ⊕ operation of Proposition 7 for a single cycle: [current] is the
    edge set (in the base graph) of the k disjoint paths, [cycle] is a cycle
    of the residual graph (residual edge ids). Forward residual edges are
    added to the set, reversed ones remove their base edge. Raises
    [Invalid_argument] if the cycle uses a forward edge already in [current]
    or reverses an edge not in [current] (cannot happen for cycles of this
    residual graph). *)

val cycle_cost : t -> G.edge list -> int
(** Total (signed) cost of a residual cycle. *)

val cycle_delay : t -> G.edge list -> int
