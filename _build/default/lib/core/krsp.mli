(** Algorithm 1 — cycle cancellation with bicameral cycles — and the outer
    [C_OPT] guess search (Lemma 3 / the "binary search for B*" remark after
    Theorem 17).

    The inner loop is the paper's verbatim: while the solution's total delay
    exceeds [D], find a bicameral cycle in the residual graph (Definition 6)
    and apply ⊕ (Proposition 7). Given a start of cost ≤ [C_OPT] (phase 1)
    and a guess [G ≥ C_OPT], Lemma 11's induction yields delay ≤ [D] and cost
    ≤ [start cost + G ≤ 2·C_OPT].

    [C_OPT] is unknown, so {!solve} brackets it: the min-sum cost is a lower
    bound, the min-delay solution's cost an upper bound, and a binary search
    finds the smallest guess at which the inner loop succeeds. Every accepted
    solution is verified feasible (delay ≤ D, k disjoint paths), so the
    search can only improve quality, never correctness. If every guess fails
    (possible only through the iteration cap or the Theorem 16 edge cases
    discussed in DESIGN.md), the min-delay solution is returned as a
    certified-feasible fallback and flagged in the stats. *)

type engine = Dp | Lp
(** Which bicameral search runs inside the loop: the polynomial DP engine or
    the faithful LP engine of Algorithm 3. *)

type stats = {
  iterations : int;  (** accepted cycle cancellations, summed over guesses *)
  type0 : int;
  type1 : int;
  type2 : int;
  guesses_tried : int;
  final_guess : int;  (** guess that produced the returned solution *)
  used_fallback : bool;
}

type error =
  | No_k_disjoint_paths
  | Delay_bound_unreachable of int
      (** instance infeasible; payload is the minimum achievable total delay *)

type outcome = (Instance.solution * stats, error) Stdlib.result

val improve :
  Instance.t ->
  start:Krsp_graph.Path.t list ->
  guess:int ->
  ?engine:engine ->
  ?exhaustive:bool ->
  ?max_iterations:int ->
  ?stall_limit:int ->
  unit ->
  (Instance.solution * int * int * int * int) option
(** One run of Algorithm 1's inner loop under a fixed [guess]: returns the
    improved solution and [(iterations, type0, type1, type2)] counts, or
    [None] if no bicameral cycle was found while still over the delay bound
    (guess too low / instance infeasible), the iteration cap was hit, or the
    delay made no progress for [stall_limit] iterations (default 40). *)

val solve :
  Instance.t ->
  ?engine:engine ->
  ?exhaustive:bool ->
  ?phase1:Phase1.kind ->
  ?max_iterations:int ->
  ?guess_steps:int ->
  unit ->
  outcome
(** Full pipeline: feasibility checks, phase 1, guess search over Algorithm 1,
    fallback. [guess_steps] bounds the binary-search depth (default 12).
    [max_iterations] caps each inner loop (default 2_000). [exhaustive]
    makes every bicameral search scan all roots and pick the globally best
    cycle instead of stopping at the first productive root (the quality/time
    trade-off of experiment E12). *)
