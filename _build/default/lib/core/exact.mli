(** Exact kRSP solver by branch-and-bound path enumeration.

    Exponential — intended for instances with at most ~12–14 vertices, where
    it provides the ground truth ([C_OPT]) that the approximation-ratio
    experiments and the end-to-end property tests measure against. Prunes
    with (a) the min-sum disjoint-path cost of the remaining demand on the
    remaining graph and (b) the minimum achievable remaining delay. *)

type result = {
  cost : int;
  delay : int;
  paths : Krsp_graph.Path.t list;
}

val solve : ?node_limit:int -> Instance.t -> result option
(** The optimum, or [None] when the instance is infeasible.
    Raises [Failure "Exact.solve: node limit"] if the search exceeds
    [node_limit] (default 5_000_000) branch nodes — a guard against
    accidentally feeding it a large instance. *)
