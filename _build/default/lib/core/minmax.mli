(** Min–max and length-bounded disjoint paths — the special cases of
    section 1.2 (Li, McCormick & Simchi-Levi [16]; Suurballe [20, 21]).

    The min–max problem (find two disjoint paths minimising the longer one)
    is NP-complete in digraphs with best possible factor 2, achieved by the
    min-sum solution: if the min-sum pair has total weight S then its longer
    path is ≤ S ≤ 2·OPT_minmax. This module packages that classical folklore
    2-approximation and the induced length-bounded feasibility test, both of
    which the experiments use as reference points. *)

type result = {
  paths : Krsp_graph.Path.t list;
  longer : int;  (** weight of the longer path *)
  total : int;
  lower_bound : int;  (** ⌈total/2⌉ ≤ OPT_minmax: certified bound *)
}

val two_approx :
  Krsp_graph.Digraph.t ->
  weight:(Krsp_graph.Digraph.edge -> int) ->
  src:Krsp_graph.Digraph.vertex ->
  dst:Krsp_graph.Digraph.vertex ->
  result option
(** 2-approximate min-max pair of disjoint paths, or [None] when fewer than
    two disjoint paths exist. Requires non-negative weights. *)

val length_bounded :
  Krsp_graph.Digraph.t ->
  weight:(Krsp_graph.Digraph.edge -> int) ->
  src:Krsp_graph.Digraph.vertex ->
  dst:Krsp_graph.Digraph.vertex ->
  bound:int ->
  [ `Yes of Krsp_graph.Path.t list | `No_certified | `Unknown ]
(** Decides (approximately) whether two disjoint paths of individual length
    ≤ [bound] exist: [`Yes] with a witness when the 2-approximation already
    fits, [`No_certified] when even the min-sum total exceeds [2·bound]
    (impossible then), [`Unknown] in the factor-2 gap — matching the
    NP-completeness of the exact question [16]. *)
