(** Exact kRSP by 0/1 integer programming over the flow LP.

    An independent second exact solver: the delay-budgeted k-flow LP
    ({!Krsp_lp.Lp_flow}) with every edge variable forced binary, solved by
    exact-rational branch-and-bound ({!Krsp_lp.Milp}). Exists to
    cross-validate {!Exact} (the combinatorial branch-and-bound) — two
    solvers with entirely different failure modes agreeing on random
    instances is the strongest ground-truth check the test suite has.

    Small instances only (every node solves an exact rational LP). *)

type result = {
  cost : int;
  delay : int;
  paths : Krsp_graph.Path.t list;
}

val solve : ?node_limit:int -> Instance.t -> result option
(** The optimum, or [None] when infeasible. Raises [Failure] on node-limit
    exhaustion (default 20_000 nodes). *)
