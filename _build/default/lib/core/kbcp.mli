(** The k disjoint Bi-Constrained Path problem (kBCP) — the related problem
    of section 1.2 / reference [12] of the paper.

    kBCP asks for k disjoint st-paths with Σc(Pᵢ) ≤ C *and* Σd(Pᵢ) ≤ D (a
    feasibility problem, both criteria constrained). The paper remarks that
    "all approximations of kRSP can be adopted to solve kBCP, but not the
    other way around": run the kRSP approximation under the delay budget and
    accept if the returned cost fits within the (relaxed) cost budget. This
    module implements exactly that reduction, reporting the bifactor slack
    actually used. *)

type verdict =
  | Feasible of Instance.solution
      (** paths meeting both budgets exactly *)
  | Feasible_relaxed of Instance.solution * float * float
      (** paths within [(cost_slack·C, delay_slack·D)]; the kRSP guarantee
          makes the slacks at most [(2+ε, 1+ε)] whenever the instance is
          bi-feasible *)
  | Infeasible_certified
      (** no k disjoint paths, or even the unconstrained minimum of one
          criterion violates its budget — a proof of infeasibility *)
  | Unknown  (** neither feasibility nor a certificate was established *)

val solve :
  Krsp_graph.Digraph.t ->
  src:Krsp_graph.Digraph.vertex ->
  dst:Krsp_graph.Digraph.vertex ->
  k:int ->
  cost_bound:int ->
  delay_bound:int ->
  ?epsilon:float ->
  unit ->
  verdict
(** Runs the kRSP pipeline in both orientations (cost-constrained and
    delay-constrained) and reports the best verdict. [epsilon] is forwarded
    to the Theorem 4 scaling (default: exact pseudo-polynomial run). *)
