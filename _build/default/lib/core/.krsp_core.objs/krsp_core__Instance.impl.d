lib/core/instance.ml: Format Krsp_flow Krsp_graph List Option
