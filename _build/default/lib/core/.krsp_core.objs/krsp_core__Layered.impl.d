lib/core/layered.ml: Array Krsp_graph List Residual
