lib/core/bicameral.mli:
