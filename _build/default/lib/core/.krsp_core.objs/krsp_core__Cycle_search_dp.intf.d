lib/core/cycle_search_dp.mli: Bicameral Krsp_graph Residual
