lib/core/cycle_search_lp.ml: Array Bicameral Cycle_search_dp Krsp_bigint Krsp_flow Krsp_graph Krsp_lp Layered List Printf Residual
