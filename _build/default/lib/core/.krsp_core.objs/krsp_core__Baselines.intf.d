lib/core/baselines.mli: Instance
