lib/core/kbcp.mli: Instance Krsp_graph
