lib/core/krsp.ml: Bicameral Cycle_search_dp Cycle_search_lp Instance Krsp_graph Logs Phase1 Residual Stdlib
