lib/core/krsp.mli: Instance Krsp_graph Phase1 Stdlib
