lib/core/minmax.ml: Array Krsp_flow Krsp_graph List
