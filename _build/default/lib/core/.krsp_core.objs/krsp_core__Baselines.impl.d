lib/core/baselines.ml: Array Cycle_search_dp Instance Krsp_graph Krsp_rsp List Phase1 Residual
