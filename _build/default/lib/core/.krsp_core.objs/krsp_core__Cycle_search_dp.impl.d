lib/core/cycle_search_dp.ml: Array Bicameral Krsp_graph List Residual
