lib/core/residual.mli: Krsp_graph
