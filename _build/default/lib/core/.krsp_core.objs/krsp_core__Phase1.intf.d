lib/core/phase1.mli: Instance Krsp_graph
