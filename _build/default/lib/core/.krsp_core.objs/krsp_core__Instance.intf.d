lib/core/instance.mli: Format Krsp_graph
