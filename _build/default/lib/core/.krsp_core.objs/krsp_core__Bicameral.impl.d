lib/core/bicameral.ml: Option
