lib/core/scaling.ml: Instance Krsp Krsp_graph Phase1 Stdlib
