lib/core/exact_milp.mli: Instance Krsp_graph
