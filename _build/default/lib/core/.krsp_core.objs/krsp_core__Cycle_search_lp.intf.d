lib/core/cycle_search_lp.mli: Bicameral Cycle_search_dp Krsp_graph Residual
