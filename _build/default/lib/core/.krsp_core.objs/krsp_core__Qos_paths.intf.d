lib/core/qos_paths.mli: Instance Krsp_graph
