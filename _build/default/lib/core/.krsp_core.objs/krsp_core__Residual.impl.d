lib/core/residual.ml: Array Hashtbl Krsp_graph List
