lib/core/qos_paths.ml: Array Instance Krsp Krsp_graph List Scaling
