lib/core/scaling.mli: Instance Krsp Phase1 Stdlib
