lib/core/layered.mli: Krsp_graph Residual
