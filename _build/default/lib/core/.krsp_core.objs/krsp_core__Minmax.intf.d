lib/core/minmax.mli: Krsp_graph
