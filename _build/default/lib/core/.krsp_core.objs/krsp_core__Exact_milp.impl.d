lib/core/exact_milp.ml: Array Instance Krsp_bigint Krsp_graph Krsp_lp
