lib/core/kbcp.ml: Float Instance Krsp Krsp_flow Krsp_graph List Option Scaling
