lib/core/exact.mli: Instance Krsp_graph
