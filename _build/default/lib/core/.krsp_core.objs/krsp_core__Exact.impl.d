lib/core/exact.ml: Array Instance Krsp_flow Krsp_graph List Option
