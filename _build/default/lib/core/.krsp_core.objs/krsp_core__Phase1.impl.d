lib/core/phase1.ml: Array Instance Krsp_bigint Krsp_flow Krsp_graph Krsp_lp List
