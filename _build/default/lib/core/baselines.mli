(** Baseline algorithms the experiments compare Algorithm 1 against.

    - {!min_sum_only}: Suurballe's minimum-cost disjoint paths with the delay
      bound ignored — the cost lower bound, usually delay-infeasible.
    - {!min_delay_only}: minimum-delay disjoint paths — always feasible when
      the instance is, usually much more expensive.
    - {!larac_per_path}: the folklore sequential heuristic: route one path at
      a time with a per-path budget of [D/k] using LARAC, removing used
      edges. Can fail on feasible instances (greedy blocking) and carries no
      cost guarantee.
    - {!zero_cost_residual}: cycle cancellation in the style of Orda &
      Sprintson [18] / Guo et al. [12]: reversed residual edges carry
      *zero* cost (so all costs stay non-negative) and negated delay, and the
      cancelled cycle is a minimum cost/delay-mean cycle found with Karp's
      algorithm. This is exactly the prior-art scheme whose limitation
      (cost of reversed edges lost) motivates the paper's bicameral
      machinery; comparing its cost curve against Algorithm 1's is
      experiment E4. *)

type run = {
  solution : Instance.solution option;  (** [None] when the method failed *)
  feasible : bool;  (** delay bound met *)
}

val min_sum_only : Instance.t -> run
val min_delay_only : Instance.t -> run
val larac_per_path : Instance.t -> run
val zero_cost_residual : ?max_iterations:int -> Instance.t -> run

val naive_delay_cancel : ?max_iterations:int -> Instance.t -> run
(** Cycle cancellation with no bicameral discipline: always applies the
    available cycle with the most negative delay, whatever it costs. This is
    the strawman of the paper's Figure 1 — on {!Krsp_gen.Hard.figure1}
    instances its cost explodes to ≈ [C_OPT·(D+1)] while Algorithm 1 stays
    within [2·C_OPT]. *)
