module G = Krsp_graph.Digraph
module BF = Krsp_graph.Bellman_ford
module Walk = Krsp_graph.Walk

type candidate = { edges : G.edge list; cost : int; delay : int; kind : Bicameral.kind }

(* The product (state) graph: vertex (u, c) for residual vertex u and
   accumulated cost c in [-B, B]; its edge "cost" field carries the residual
   *delay* (the quantity Bellman-Ford minimises), and [pmap] maps each state
   edge back to its residual edge. *)
let build_state_graph res ~bound =
  let rg = res.Residual.graph in
  let n = G.n rg in
  let width = (2 * bound) + 1 in
  let idx u c = (u * width) + (c + bound) in
  let p = G.create ~expected_edges:(G.m rg * width) ~n:(n * width) () in
  let pmap = ref [] in
  G.iter_edges rg (fun e ->
      let u = G.src rg e and w = G.dst rg e in
      let c = G.cost rg e and d = G.delay rg e in
      let lo = max (-bound) (-bound - c) and hi = min bound (bound - c) in
      for i = lo to hi do
        ignore (G.add_edge p ~src:(idx u i) ~dst:(idx w (i + c)) ~cost:d ~delay:0);
        pmap := e :: !pmap
      done);
  (p, Array.of_list (List.rev !pmap), idx)

let roots res =
  let rg = res.Residual.graph in
  let mark = Array.make (G.n rg) false in
  Array.iteri
    (fun e reversed ->
      if reversed then begin
        mark.(G.src rg e) <- true;
        mark.(G.dst rg e) <- true
      end)
    res.Residual.is_reversed;
  let out = ref [] in
  Array.iteri (fun v m -> if m then out := v :: !out) mark;
  List.rev !out

let evaluate res ctx cyc =
  let cost = Residual.cycle_cost res cyc and delay = Residual.cycle_delay res cyc in
  match Bicameral.classify ctx ~cost ~delay with
  | None -> None
  | Some kind -> Some { edges = cyc; cost; delay; kind }

(* Decompose a closed residual walk (edge multiset, degree-balanced) into
   simple cycles. *)
let cycles_of_walk res walk_edges = Walk.decompose_cycles res.Residual.graph walk_edges

let candidates_of_walk res ctx walk_edges =
  List.filter_map (evaluate res ctx) (cycles_of_walk res walk_edges)

let better ctx a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some ca, Some cb ->
    if Bicameral.compare_candidates ctx (ca.cost, ca.delay) (cb.cost, cb.delay) <= 0 then
      Some ca
    else Some cb

(* Phase A: any negative-delay cycle of the state graph projects to residual
   cycles of total cost 0 and total delay < 0, at least one piece of which is
   itself negative-delay. *)
let phase_a res ctx p pmap =
  match BF.negative_cycle p ~weight:(G.cost p) () with
  | None -> []
  | Some pcycle -> candidates_of_walk res ctx (List.map (fun pe -> pmap.(pe)) pcycle)

(* Phase B for one root: min-delay walks from (root, 0) to every (root, c). *)
let phase_b res ctx p pmap idx ~bound root =
  match BF.run p ~weight:(G.cost p) ~src:(idx root 0) () with
  | BF.Negative_cycle _ -> [] (* handled by phase A *)
  | BF.Dist { dist; parent } ->
    let out = ref [] in
    for c = -bound to bound do
      if c <> 0 && dist.(idx root c) <> max_int then begin
        (* reconstruct the state path and project to residual edges *)
        let rec collect acc v =
          let e = parent.(v) in
          if e = -1 then acc else collect (pmap.(e) :: acc) (G.src p e)
        in
        let walk = collect [] (idx root c) in
        out := candidates_of_walk res ctx walk @ !out
      end
    done;
    !out

(* When stopping early, keep scanning roots until a delay-reducing candidate
   (type-0/1) shows up — settling for the first type-2 can stall Algorithm 1
   in long trade-back sequences. *)
let delay_reducing found =
  List.exists (fun c -> c.kind <> Bicameral.Type2) found

let search res ~ctx ~bound ~stop_early =
  assert (bound >= 1);
  let p, pmap, idx = build_state_graph res ~bound in
  let a = phase_a res ctx p pmap in
  let all = ref a in
  if stop_early && delay_reducing a then !all
  else begin
    let rec scan = function
      | [] -> ()
      | root :: rest ->
        let found = phase_b res ctx p pmap idx ~bound root in
        all := found @ !all;
        if stop_early && delay_reducing found then () else scan rest
    in
    scan (roots res);
    !all
  end

let find res ~ctx ~bound ?(exhaustive = false) () =
  let cands = search res ~ctx ~bound ~stop_early:(not exhaustive) in
  List.fold_left (fun best c -> better ctx best (Some c)) None cands

let enumerate res ~ctx ~bound = search res ~ctx ~bound ~stop_early:false

let enumerate_raw res ~bound =
  assert (bound >= 1);
  let p, pmap, idx = build_state_graph res ~bound in
  let all = ref [] in
  let push cyc =
    all := (cyc, Residual.cycle_cost res cyc, Residual.cycle_delay res cyc) :: !all
  in
  (match BF.negative_cycle p ~weight:(G.cost p) () with
  | Some pcycle ->
    List.iter push (cycles_of_walk res (List.map (fun pe -> pmap.(pe)) pcycle))
  | None ->
    List.iter
      (fun root ->
        match BF.run p ~weight:(G.cost p) ~src:(idx root 0) () with
        | BF.Negative_cycle _ -> ()
        | BF.Dist { dist; parent } ->
          for c = -bound to bound do
            if c <> 0 && dist.(idx root c) <> max_int then begin
              let rec collect acc v =
                let e = parent.(v) in
                if e = -1 then acc else collect (pmap.(e) :: acc) (G.src p e)
              in
              let walk = collect [] (idx root c) in
              List.iter push (cycles_of_walk res walk)
            end
          done)
      (roots res));
  !all
