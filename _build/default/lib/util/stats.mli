(** Small descriptive-statistics helpers for experiment reporting. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val minimum : float list -> float
(** Smallest element; raises [Invalid_argument] on the empty list. *)

val maximum : float list -> float
(** Largest element; raises [Invalid_argument] on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the [p]-th percentile ([0 <= p <= 100]) by linear
    interpolation on the sorted list. Raises [Invalid_argument] on []. *)

val median : float list -> float
(** [median xs = percentile 50. xs]. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values; 0 on the empty list. *)
