(** Aligned plain-text tables for experiment output.

    The bench harness prints one table per experiment; keeping the renderer
    here means examples and the CLI share the exact same formatting. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** [create ~columns] starts an empty table with the given header cells. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] if the arity does not match the
    header. *)

val add_separator : t -> unit
(** Append a horizontal rule between row groups. *)

val render : t -> string
(** Render with column widths fitted to content, header underlined. *)

val print : t -> unit
(** [print t] writes [render t] to stdout followed by a newline. *)

(* Cell formatting helpers used across experiments. *)

val fmt_float : ?decimals:int -> float -> string
val fmt_ratio : float -> string
(** Ratio with 3 decimals, or ["-"] for NaN/infinite. *)

val fmt_int : int -> string
(** Thousands-separated integer, e.g. [12_345] renders as ["12,345"]. *)
