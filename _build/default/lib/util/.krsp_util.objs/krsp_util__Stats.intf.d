lib/util/stats.mli:
