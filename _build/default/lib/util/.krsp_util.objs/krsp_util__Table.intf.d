lib/util/table.mli:
