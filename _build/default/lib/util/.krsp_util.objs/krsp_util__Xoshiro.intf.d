lib/util/xoshiro.mli:
