lib/util/xoshiro.ml: Array Int64
