lib/util/timer.mli:
