(** Deterministic pseudo-random number generation.

    A hand-rolled xoshiro256** generator seeded through splitmix64, so that
    every experiment in the repository is reproducible bit-for-bit from an
    integer seed, independently of the OCaml stdlib [Random] state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed via splitmix64. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each workload its own stream. *)

val copy : t -> t
(** [copy t] is a generator with the same state as [t]; the two evolve
    independently afterwards. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
