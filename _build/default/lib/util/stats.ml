let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (sq /. float_of_int (List.length xs))

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty"
  | x :: xs -> List.fold_left max x xs

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty"
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end

let median xs = percentile 50. xs

let geometric_mean = function
  | [] -> 0.
  | xs ->
    let logsum = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (logsum /. float_of_int (List.length xs))
