type align = Left | Right

type row = Cells of string list | Separator

type t = { headers : string list; aligns : align list; mutable rows : row list }

let create ~columns =
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cells -> max acc (String.length (List.nth cells i)))
          (String.length h) rows)
      t.headers
  in
  let buf = Buffer.create 1024 in
  let emit_row cells =
    let padded =
      List.mapi
        (fun i cell -> pad (List.nth t.aligns i) (List.nth widths i) cell)
        cells
    in
    Buffer.add_string buf ("| " ^ String.concat " | " padded ^ " |\n")
  in
  let rule () =
    let dashes = List.map (fun w -> String.make (w + 2) '-') widths in
    Buffer.add_string buf ("+" ^ String.concat "+" dashes ^ "+\n")
  in
  rule ();
  emit_row t.headers;
  rule ();
  List.iter
    (function Cells cells -> emit_row cells | Separator -> rule ())
    rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x

let fmt_ratio x =
  if Float.is_nan x || Float.is_integer x = false && Float.abs x = Float.infinity then "-"
  else if Float.abs x = Float.infinity then "-"
  else Printf.sprintf "%.3f" x

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
