let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let time_ms f =
  let result, seconds = time f in
  (result, seconds *. 1000.)
