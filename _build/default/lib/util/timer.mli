(** Wall-clock timing for coarse experiment measurements (the fine-grained
    micro-benchmarks use bechamel instead). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)

val time_ms : (unit -> 'a) -> 'a * float
(** Like {!time} but in milliseconds. *)
