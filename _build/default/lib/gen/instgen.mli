(** Feasible kRSP instance sampling.

    Wraps a topology into an {!Krsp_core.Instance.t} by picking endpoints
    with enough edge-connectivity and a delay bound that lies strictly
    between the minimum achievable total delay and the delay of the cheapest
    (delay-oblivious) solution — the regime where the problem is actually
    hard: the min-sum answer violates the bound, the min-delay answer is
    overpriced, and the cycle-cancellation machinery has work to do. *)

type spec = {
  k : int;
  tightness : float;
      (** 0 → delay bound at the minimum achievable (hardest);
          1 → bound at the min-sum solution's delay (trivial). Clamped to
          [\[0, 1\]]. *)
}

val instance :
  Krsp_util.Xoshiro.t ->
  Krsp_graph.Digraph.t ->
  spec ->
  Krsp_core.Instance.t option
(** Picks [src]/[dst] (random, biased to distant pairs), checks
    k-connectivity, and interpolates the delay bound; [None] when no vertex
    pair carries [k] disjoint paths. Always returns a feasible instance. *)

val instance_st :
  Krsp_graph.Digraph.t ->
  src:Krsp_graph.Digraph.vertex ->
  dst:Krsp_graph.Digraph.vertex ->
  spec ->
  Krsp_core.Instance.t option
(** Same, with fixed endpoints. *)
