module G = Krsp_graph.Digraph
module X = Krsp_util.Xoshiro
module Instance = Krsp_core.Instance
module Phase1 = Krsp_core.Phase1

type spec = { k : int; tightness : float }

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

let instance_st g ~src ~dst spec =
  if not (Krsp_graph.Bfs.edge_connectivity_at_least g ~src ~dst ~k:spec.k) then None
  else begin
    (* probe with a wide-open instance to get the two anchor delays *)
    let probe = Instance.create g ~src ~dst ~k:spec.k ~delay_bound:max_int in
    match (Instance.min_possible_delay probe, Phase1.min_sum probe) with
    | Some dmin, Phase1.Start s ->
      let dmax = max dmin s.Phase1.delay in
      let alpha = clamp01 spec.tightness in
      let bound = dmin + int_of_float (alpha *. float_of_int (dmax - dmin)) in
      Some (Instance.create g ~src ~dst ~k:spec.k ~delay_bound:bound)
    | _ -> None
  end

let instance rng g spec =
  let n = G.n g in
  if n < 2 then None
  else begin
    (* try a handful of random pairs, keep the first connected one *)
    let rec attempt tries =
      if tries = 0 then None
      else begin
        let src = X.int rng n in
        let dst = X.int rng n in
        if src = dst then attempt (tries - 1)
        else begin
          match instance_st g ~src ~dst spec with
          | Some t -> Some t
          | None -> attempt (tries - 1)
        end
      end
    in
    attempt 30
  end
