(** Network topology generators for the experiments.

    All generators are deterministic given the PRNG state; costs and delays
    are sampled uniformly from the given inclusive ranges. The families are
    chosen to match the paper's motivating setting (QoS routing / multipath
    in data and SDN networks):

    - {!erdos_renyi}: baseline random digraphs;
    - {!layered_dag}: wide DAGs with many disjoint route choices, the
      friendliest shape for disjoint-path routing;
    - {!grid}: 2-D mesh (NoC / metro-network style), edges right/down plus
      optional wraparound;
    - {!waxman}: geometric random graphs à la Waxman, the classical model
      for router-level ISP topologies;
    - {!ring_chords}: SONET-like ring with random chords;
    - {!fat_tree}: the canonical data-center fabric (k-ary fat-tree), where
      multipath between two hosts is the norm. *)

module G := Krsp_graph.Digraph

type weights = {
  cost_range : int * int;  (** inclusive *)
  delay_range : int * int;
}

val default_weights : weights

val erdos_renyi : Krsp_util.Xoshiro.t -> n:int -> p:float -> weights -> G.t

val layered_dag :
  Krsp_util.Xoshiro.t -> layers:int -> width:int -> p:float -> weights -> G.t
(** Vertex 0 is the source side, last vertex the sink side; consecutive
    layers are connected with probability [p] (at least one outgoing edge per
    vertex is forced so the DAG stays connected). *)

val grid : Krsp_util.Xoshiro.t -> rows:int -> cols:int -> bidirectional:bool -> weights -> G.t
(** Vertices are row-major; edges go right and down (and back when
    [bidirectional]). *)

val waxman :
  Krsp_util.Xoshiro.t -> n:int -> alpha:float -> beta:float -> weights -> G.t
(** Waxman model on the unit square: P(u→v) = α·exp(−dist/(β·√2)); delays
    are proportional to euclidean distance (propagation delay), costs drawn
    from [weights]. *)

val ring_chords : Krsp_util.Xoshiro.t -> n:int -> chords:int -> weights -> G.t
(** Bidirected n-ring plus [chords] random bidirected chords. *)

val fat_tree : Krsp_util.Xoshiro.t -> pods:int -> weights -> G.t
(** k-ary fat-tree with [pods] pods ([pods] even, ≥ 2): (pods/2)² core
    switches, per pod pods/2 aggregation and pods/2 edge switches; all
    switch-level links bidirected. Hosts are not materialised; route between
    edge switches. *)

val barabasi_albert : Krsp_util.Xoshiro.t -> n:int -> attach:int -> weights -> G.t
(** Preferential-attachment scale-free graph (Barabási–Albert): starts from
    a small bidirected clique and attaches each new vertex to [attach]
    existing vertices chosen proportionally to degree; all links bidirected.
    Requires [n > attach >= 1]. *)

val reference_isp : Krsp_util.Xoshiro.t -> weights -> G.t
(** A fixed 22-node pan-European research-network-like topology (in the
    spirit of the GÉANT maps used throughout the QoS-routing literature):
    deterministic adjacency, randomised weights. All links bidirected. *)
