lib/gen/topology.ml: Array Krsp_graph Krsp_util List
