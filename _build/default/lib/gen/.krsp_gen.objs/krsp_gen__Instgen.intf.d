lib/gen/instgen.mli: Krsp_core Krsp_graph Krsp_util
