lib/gen/hard.mli: Krsp_core
