lib/gen/topology.mli: Krsp_graph Krsp_util
