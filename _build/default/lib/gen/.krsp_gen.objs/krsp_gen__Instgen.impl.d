lib/gen/instgen.ml: Krsp_core Krsp_graph Krsp_util
