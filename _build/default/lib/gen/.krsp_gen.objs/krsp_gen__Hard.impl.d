lib/gen/hard.ml: Krsp_core Krsp_graph
