module G = Krsp_graph.Digraph
module Instance = Krsp_core.Instance

(* Figure 1: vertices s a b c t. Two disjoint paths required. The free edge
   s→t is always one of them. The other starts s→a and then either
   - a→b→t: the optimum (cost [cost_unit] on b→t, delay D on a→b), or
   - a→b→c→t: the phase-1 min-sum choice (cost 0, delay 2D — infeasible), or
   - a→t: the decoy (delay 0 but cost  cost_unit·(D+1) − 1).
   Naive most-delay-first cancellation jumps to the decoy (−2D delay);
   bicameral cancellation pays cost_unit for the optimal −D cycle instead. *)
let figure1 ~cost_unit ~delay_bound =
  if cost_unit < 1 then invalid_arg "Hard.figure1: cost_unit >= 1";
  if delay_bound < 2 then invalid_arg "Hard.figure1: delay_bound >= 2";
  let g = G.create ~n:5 () in
  let s = 0 and a = 1 and b = 2 and c = 3 and t = 4 in
  let d = delay_bound in
  ignore (G.add_edge g ~src:s ~dst:t ~cost:0 ~delay:0);
  ignore (G.add_edge g ~src:s ~dst:a ~cost:0 ~delay:0);
  ignore (G.add_edge g ~src:a ~dst:b ~cost:0 ~delay:d);
  ignore (G.add_edge g ~src:b ~dst:c ~cost:0 ~delay:d);
  ignore (G.add_edge g ~src:c ~dst:t ~cost:0 ~delay:0);
  ignore (G.add_edge g ~src:b ~dst:t ~cost:cost_unit ~delay:0);
  ignore (G.add_edge g ~src:a ~dst:t ~cost:((cost_unit * (d + 1)) - 1) ~delay:0);
  Instance.create g ~src:s ~dst:t ~k:2 ~delay_bound

(* Zigzag: a chain of [levels] segments, each offering a cheap-slow edge
   (cost 0, delay 2) and a costly-fast one (cost 1, delay 0). The min-sum
   start is all-slow (delay 2·levels); the bound of [levels] forces
   ceil(levels/2) single-segment upgrade cycles, one per iteration. *)
let zigzag ~levels =
  if levels < 1 then invalid_arg "Hard.zigzag: levels >= 1";
  let g = G.create ~n:(levels + 1) () in
  for i = 0 to levels - 1 do
    ignore (G.add_edge g ~src:i ~dst:(i + 1) ~cost:0 ~delay:2);
    ignore (G.add_edge g ~src:i ~dst:(i + 1) ~cost:1 ~delay:0)
  done;
  Instance.create g ~src:0 ~dst:levels ~k:1 ~delay_bound:levels
