(** Adversarial instance families, including the paper's Figure 1.

    {!figure1} reproduces the construction showing why Definition 10 caps
    [|c(O)| ≤ C_OPT]: without the cap, cycle cancellation can walk to a
    solution of cost ≈ [C_OPT·(D+1)] while the optimum costs [C_OPT]. The
    instance has [k = 2], source [s], sink [t], a free direct edge [s→t],
    and two parallel routes: the optimal [s→a→b→t] (cost [C], delay [D]) and
    a decoy [s→a→t] reachable by a cascade of tiny-delay-improvement,
    huge-cost cycles. *)

val figure1 : cost_unit:int -> delay_bound:int -> Krsp_core.Instance.t
(** [cost_unit] is the paper's [C_OPT] scale (≥ 1), [delay_bound] the bound
    [D] (≥ 2). The optimal solution costs exactly [cost_unit] with delay
    [delay_bound]; the decoy route costs [cost_unit·(delay_bound+1) − 1]
    with delay 0. *)

val zigzag : levels:int -> Krsp_core.Instance.t
(** A k=2 family where the min-sum start needs [levels] cancellation
    iterations to become feasible — exercises the iteration-count experiment
    (E5) with a controllable knob. *)
