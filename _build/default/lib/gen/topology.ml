module G = Krsp_graph.Digraph
module X = Krsp_util.Xoshiro

type weights = { cost_range : int * int; delay_range : int * int }

let default_weights = { cost_range = (1, 20); delay_range = (1, 20) }

let sample rng (lo, hi) = X.int_in rng lo hi

let add rng w g ~src ~dst =
  ignore
    (G.add_edge g ~src ~dst ~cost:(sample rng w.cost_range) ~delay:(sample rng w.delay_range))

let erdos_renyi rng ~n ~p w =
  let g = G.create ~n () in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && X.float rng 1.0 < p then add rng w g ~src:u ~dst:v
    done
  done;
  g

let layered_dag rng ~layers ~width ~p w =
  assert (layers >= 2 && width >= 1);
  let n = layers * width in
  let g = G.create ~n () in
  let vertex l i = (l * width) + i in
  for l = 0 to layers - 2 do
    for i = 0 to width - 1 do
      let forced = X.int rng width in
      for j = 0 to width - 1 do
        if j = forced || X.float rng 1.0 < p then
          add rng w g ~src:(vertex l i) ~dst:(vertex (l + 1) j)
      done
    done
  done;
  g

let grid rng ~rows ~cols ~bidirectional w =
  let n = rows * cols in
  let g = G.create ~n () in
  let vertex r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then begin
        add rng w g ~src:(vertex r c) ~dst:(vertex r (c + 1));
        if bidirectional then add rng w g ~src:(vertex r (c + 1)) ~dst:(vertex r c)
      end;
      if r + 1 < rows then begin
        add rng w g ~src:(vertex r c) ~dst:(vertex (r + 1) c);
        if bidirectional then add rng w g ~src:(vertex (r + 1) c) ~dst:(vertex r c)
      end
    done
  done;
  g

let waxman rng ~n ~alpha ~beta w =
  let g = G.create ~n () in
  let xs = Array.init n (fun _ -> X.float rng 1.0) in
  let ys = Array.init n (fun _ -> X.float rng 1.0) in
  let max_dist = sqrt 2.0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
        let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
        if X.float rng 1.0 < alpha *. exp (-.dist /. (beta *. max_dist)) then begin
          (* propagation delay proportional to distance, at least 1 *)
          let delay = max 1 (int_of_float (dist *. 20.)) in
          ignore (G.add_edge g ~src:u ~dst:v ~cost:(sample rng w.cost_range) ~delay)
        end
      end
    done
  done;
  g

let ring_chords rng ~n ~chords w =
  assert (n >= 3);
  let g = G.create ~n () in
  for v = 0 to n - 1 do
    let next = (v + 1) mod n in
    add rng w g ~src:v ~dst:next;
    add rng w g ~src:next ~dst:v
  done;
  for _ = 1 to chords do
    let u = X.int rng n in
    let v = X.int rng n in
    if u <> v && abs (u - v) <> 1 && abs (u - v) <> n - 1 then begin
      add rng w g ~src:u ~dst:v;
      add rng w g ~src:v ~dst:u
    end
  done;
  g

let barabasi_albert rng ~n ~attach w =
  assert (n > attach && attach >= 1);
  let g = G.create ~n () in
  let seed_size = attach + 1 in
  (* degree-weighted sampling via a repeated-endpoint urn *)
  let urn = ref [] in
  let link u v =
    add rng w g ~src:u ~dst:v;
    add rng w g ~src:v ~dst:u;
    urn := u :: v :: !urn
  in
  for u = 0 to seed_size - 1 do
    for v = u + 1 to seed_size - 1 do
      link u v
    done
  done;
  for v = seed_size to n - 1 do
    let targets = ref [] in
    let arr = Array.of_list !urn in
    while List.length !targets < attach do
      let candidate = arr.(X.int rng (Array.length arr)) in
      if not (List.mem candidate !targets) then targets := candidate :: !targets
    done;
    List.iter (fun u -> link v u) !targets
  done;
  g

(* A fixed 22-node European-research-network-like mesh: node ids are
   arbitrary city labels, adjacency chosen to mimic the published GEANT-era
   maps (degree 2-5, a dense core, stub countries on rings). *)
let reference_isp_links =
  [ (0, 1); (0, 2); (0, 5); (1, 3); (1, 6); (2, 4); (2, 7); (3, 4); (3, 8);
    (4, 9); (5, 6); (5, 10); (6, 11); (7, 8); (7, 12); (8, 13); (9, 13);
    (9, 14); (10, 11); (10, 15); (11, 16); (12, 13); (12, 17); (13, 18);
    (14, 18); (14, 19); (15, 16); (15, 20); (16, 21); (17, 18); (17, 20);
    (19, 21); (20, 21); (6, 8); (11, 13)
  ]

let reference_isp rng w =
  let g = G.create ~n:22 () in
  List.iter
    (fun (u, v) ->
      add rng w g ~src:u ~dst:v;
      add rng w g ~src:v ~dst:u)
    reference_isp_links;
  g

let fat_tree rng ~pods w =
  assert (pods >= 2 && pods mod 2 = 0);
  let half = pods / 2 in
  let n_core = half * half in
  let n_agg = pods * half in
  let n_edge = pods * half in
  let g = G.create ~n:(n_core + n_agg + n_edge) () in
  let core i j = (i * half) + j in
  let agg p i = n_core + (p * half) + i in
  let edge p i = n_core + n_agg + (p * half) + i in
  let link u v =
    add rng w g ~src:u ~dst:v;
    add rng w g ~src:v ~dst:u
  in
  for p = 0 to pods - 1 do
    for i = 0 to half - 1 do
      (* aggregation switch i of pod p connects to core row i *)
      for j = 0 to half - 1 do
        link (agg p i) (core i j)
      done;
      (* full bipartite agg-edge inside the pod *)
      for e = 0 to half - 1 do
        link (agg p i) (edge p e)
      done
    done
  done;
  g
