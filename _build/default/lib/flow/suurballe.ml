module G = Krsp_graph.Digraph
module Walk = Krsp_graph.Walk

let flow_edges g flow =
  G.fold_edges g ~init:[] ~f:(fun acc e -> if flow.(e) > 0 then e :: acc else acc)

let solve g ~src ~dst ~k =
  match
    Mcmf.min_cost_flow g ~capacity:(fun _ -> 1) ~cost:(G.cost g) ~src ~dst ~amount:k
  with
  | None -> None
  | Some { Mcmf.flow; _ } ->
    let edges = flow_edges g flow in
    let paths, cycles = Walk.decompose_st g ~src ~dst ~k edges in
    (* a min-cost flow with non-negative costs admits a decomposition without
       positive-cost cycles; zero-cost cycles may appear and are dropped *)
    assert (List.for_all (fun c -> Krsp_graph.Path.cost g c = 0) cycles);
    Some paths

let min_cost g ~src ~dst ~k =
  Option.map
    (fun r -> r.Mcmf.cost)
    (Mcmf.min_cost_flow g ~capacity:(fun _ -> 1) ~cost:(G.cost g) ~src ~dst ~amount:k)
