open Krsp_bigint
module G = Krsp_graph.Digraph

(* Residual values live in a mutable array; support-walking repeatedly peels
   the bottleneck of a simple path/cycle found by following positive-value
   out-edges. Each peel zeroes at least one edge, so at most m iterations. *)

let values_of g value =
  Array.init (G.m g) (fun e ->
      let v = value e in
      if Q.sign v < 0 then invalid_arg "Decompose: negative flow value";
      v)

let positive_out g values v =
  List.find_opt (fun e -> Q.sign values.(e) > 0) (G.out_edges g v)

let imbalance g values v =
  let sum = List.fold_left (fun acc e -> Q.add acc values.(e)) Q.zero in
  Q.sub (sum (G.out_edges g v)) (sum (G.in_edges g v))

(* Follow positive out-edges from [start] until either [is_sink] holds or a
   vertex repeats; returns either a simple path to the sink or a simple
   cycle. Assumes every visited non-sink vertex has a positive out-edge. *)
let trace g values ~start ~is_sink =
  let rec go stack seen v =
    if is_sink v && stack <> [] then `Path (List.rev stack)
    else begin
      match positive_out g values v with
      | None ->
        (* can only happen at a sink (handled above) or on bad input *)
        invalid_arg "Decompose: conservation violated (dead end)"
      | Some e ->
        let seen = (v, ()) :: seen in
        let w = G.dst g e in
        if List.mem_assoc w seen then begin
          if G.src g e = w then `Cycle [ e ] (* self-loop *)
          else begin
            (* pop the cycle w .. v -> w off the stack *)
            let rec cut acc = function
              | [] -> assert false
              | e' :: rest ->
                let acc = e' :: acc in
                if G.src g e' = w then acc else cut acc rest
            in
            `Cycle (cut [ e ] stack)
          end
        end
        else go (e :: stack) seen w
    end
  in
  go [] [] start

let peel values edges =
  let bottleneck =
    List.fold_left (fun acc e -> Q.min acc values.(e)) values.(List.hd edges) edges
  in
  List.iter (fun e -> values.(e) <- Q.sub values.(e) bottleneck) edges;
  bottleneck

let circulation g value =
  let values = values_of g value in
  for v = 0 to G.n g - 1 do
    if not (Q.is_zero (imbalance g values v)) then
      invalid_arg "Decompose.circulation: unbalanced vertex"
  done;
  let out = ref [] in
  let rec drain e =
    if e >= G.m g then ()
    else if Q.sign values.(e) > 0 then begin
      match trace g values ~start:(G.src g e) ~is_sink:(fun _ -> false) with
      | `Path _ -> assert false
      | `Cycle cyc ->
        let w = peel values cyc in
        out := (w, cyc) :: !out;
        drain e
    end
    else drain (e + 1)
  in
  drain 0;
  !out

let st_flow g ~src ~dst value =
  let values = values_of g value in
  for v = 0 to G.n g - 1 do
    if v <> src && v <> dst && not (Q.is_zero (imbalance g values v)) then
      invalid_arg "Decompose.st_flow: conservation violated"
  done;
  if Q.sign (imbalance g values src) < 0 then
    invalid_arg "Decompose.st_flow: negative surplus at source";
  let paths = ref [] and cycles = ref [] in
  (* first peel src->dst paths until src is balanced *)
  let rec peel_paths () =
    if Q.sign (imbalance g values src) > 0 then begin
      match trace g values ~start:src ~is_sink:(fun v -> v = dst) with
      | `Path p ->
        let w = peel values p in
        paths := (w, p) :: !paths;
        peel_paths ()
      | `Cycle cyc ->
        let w = peel values cyc in
        cycles := (w, cyc) :: !cycles;
        peel_paths ()
    end
  in
  peel_paths ();
  (* leftovers form a circulation *)
  let leftover = circulation g (fun e -> values.(e)) in
  (!paths, !cycles @ leftover)
