(** Decomposition of fractional flows and circulations into weighted simple
    paths and cycles.

    Used to "release the set of cycles" from an LP (6) solution (Algorithm 3
    step 1(a)iii of the paper) and to split the phase-1 fractional flow into
    an integral part plus fractional residue for rounding. *)

open Krsp_bigint

val circulation :
  Krsp_graph.Digraph.t ->
  (Krsp_graph.Digraph.edge -> Q.t) ->
  (Q.t * Krsp_graph.Path.t) list
(** [circulation g value] decomposes a non-negative circulation (every vertex
    balanced: Σ value(out) = Σ value(in)) into weighted vertex-simple cycles
    whose weighted sum reproduces [value] exactly. Raises [Invalid_argument]
    if some vertex is unbalanced. *)

val st_flow :
  Krsp_graph.Digraph.t ->
  src:Krsp_graph.Digraph.vertex ->
  dst:Krsp_graph.Digraph.vertex ->
  (Krsp_graph.Digraph.edge -> Q.t) ->
  (Q.t * Krsp_graph.Path.t) list * (Q.t * Krsp_graph.Path.t) list
(** [st_flow g ~src ~dst value] splits a non-negative [src→dst] flow into
    (weighted simple paths, weighted simple cycles). Raises
    [Invalid_argument] if conservation fails at an interior vertex or the
    net surplus at [src] is negative. *)
