(** Minimum total-cost [k] edge-disjoint paths (Suurballe / min-cost-flow).

    Solves the delay-oblivious relaxation of kRSP exactly: [k] disjoint
    [s→t] paths of minimum cost-sum, via a unit-capacity min-cost flow of
    value [k] followed by path decomposition. Its cost is a lower bound on
    [C_OPT] of any kRSP instance on the same graph, which is exactly the
    property the paper's Lemma 11 induction needs from the phase-1
    solution. *)

val solve :
  Krsp_graph.Digraph.t ->
  src:Krsp_graph.Digraph.vertex ->
  dst:Krsp_graph.Digraph.vertex ->
  k:int ->
  Krsp_graph.Path.t list option
(** [k] edge-disjoint paths minimising total cost, or [None] when fewer than
    [k] disjoint paths exist. *)

val min_cost :
  Krsp_graph.Digraph.t ->
  src:Krsp_graph.Digraph.vertex ->
  dst:Krsp_graph.Digraph.vertex ->
  k:int ->
  int option
(** Just the optimal cost-sum. *)
