lib/flow/decompose.ml: Array Krsp_bigint Krsp_graph List Q
