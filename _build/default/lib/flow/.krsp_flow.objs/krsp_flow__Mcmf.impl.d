lib/flow/mcmf.ml: Array Krsp_graph List
