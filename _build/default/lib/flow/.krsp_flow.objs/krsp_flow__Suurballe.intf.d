lib/flow/suurballe.mli: Krsp_graph
