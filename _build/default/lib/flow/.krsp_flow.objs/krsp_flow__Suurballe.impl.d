lib/flow/suurballe.ml: Array Krsp_graph List Mcmf Option
