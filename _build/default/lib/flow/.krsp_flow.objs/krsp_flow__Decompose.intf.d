lib/flow/decompose.mli: Krsp_bigint Krsp_graph Q
