lib/flow/mcmf.mli: Krsp_graph
