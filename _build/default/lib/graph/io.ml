module G = Digraph

let to_edge_list g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "n %d\n" (G.n g));
  G.iter_edges g (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "e %d %d %d %d\n" (G.src g e) (G.dst g e) (G.cost g e) (G.delay g e)));
  Buffer.contents buf

let of_edge_list text =
  let lines = String.split_on_char '\n' text in
  let graph = ref None in
  let fail lineno msg = failwith (Printf.sprintf "Io.of_edge_list: line %d: %s" lineno msg) in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "n"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 0 && !graph = None -> graph := Some (G.create ~n ())
          | Some _ when !graph <> None -> fail lineno "duplicate 'n' line"
          | _ -> fail lineno "invalid vertex count")
        | "e" :: rest -> (
          match (!graph, List.map int_of_string_opt rest) with
          | None, _ -> fail lineno "'e' before 'n'"
          | Some g, [ Some src; Some dst; Some cost; Some delay ] -> (
            try ignore (G.add_edge g ~src ~dst ~cost ~delay)
            with Invalid_argument m -> fail lineno m)
          | Some _, _ -> fail lineno "expected: e <src> <dst> <cost> <delay>")
        | _ -> fail lineno "expected 'n <count>' or 'e <src> <dst> <cost> <delay>'"
      end)
    lines;
  match !graph with
  | Some g -> g
  | None -> failwith "Io.of_edge_list: missing 'n' line"

let palette = [| "red"; "blue"; "forestgreen"; "orange"; "purple"; "brown" |]

let to_dot ?(highlight = fun _ -> None) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph g {\n  rankdir=LR;\n";
  for v = 0 to G.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  G.iter_edges g (fun e ->
      let color =
        match highlight e with
        | Some i -> Printf.sprintf ", color=%s, penwidth=2" palette.(i mod Array.length palette)
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d [label=\"c%d d%d\"%s];\n" (G.src g e) (G.dst g e)
           (G.cost g e) (G.delay g e) color));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
