(** Text formats for graphs: a line-based edge-list format for instances and
    Graphviz DOT export for inspection.

    Edge-list format (comments start with [#], blank lines ignored):
    {v
      n <vertex-count>
      e <src> <dst> <cost> <delay>
      ...
    v} *)

val to_edge_list : Digraph.t -> string

val of_edge_list : string -> Digraph.t
(** Raises [Failure] with a line-precise message on malformed input. *)

val to_dot :
  ?highlight:(Digraph.edge -> int option) ->
  Digraph.t ->
  string
(** DOT rendering; [highlight e = Some i] colors edge [e] with the [i]-th
    palette color (used to show the k paths of a solution). *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)

val read_file : string -> string
