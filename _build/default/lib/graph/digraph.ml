(* Edges live in growable parallel arrays; adjacency is an array of edge-id
   lists (edges are only ever appended, never removed — algorithms that need
   edge deletion work on a fresh copy or carry a [disabled] mask). *)

type vertex = int
type edge = int

type t = {
  mutable n : int;
  mutable m : int;
  mutable src : int array;
  mutable dst : int array;
  mutable cost : int array;
  mutable delay : int array;
  mutable out : edge list array; (* length >= n *)
  mutable inc : edge list array;
}

let create ?(expected_edges = 16) ~n () =
  let cap = max expected_edges 1 in
  {
    n;
    m = 0;
    src = Array.make cap 0;
    dst = Array.make cap 0;
    cost = Array.make cap 0;
    delay = Array.make cap 0;
    out = Array.make (max n 1) [];
    inc = Array.make (max n 1) [];
  }

let copy t =
  {
    t with
    src = Array.copy t.src;
    dst = Array.copy t.dst;
    cost = Array.copy t.cost;
    delay = Array.copy t.delay;
    out = Array.copy t.out;
    inc = Array.copy t.inc;
  }

let n t = t.n
let m t = t.m

let grow_vertices t =
  let cap = Array.length t.out in
  if t.n >= cap then begin
    let cap' = 2 * cap in
    let out' = Array.make cap' [] and inc' = Array.make cap' [] in
    Array.blit t.out 0 out' 0 cap;
    Array.blit t.inc 0 inc' 0 cap;
    t.out <- out';
    t.inc <- inc'
  end

let add_vertex t =
  grow_vertices t;
  let v = t.n in
  t.n <- t.n + 1;
  v

let grow_edges t =
  let cap = Array.length t.src in
  if t.m >= cap then begin
    let cap' = 2 * cap in
    let extend a = let a' = Array.make cap' 0 in Array.blit a 0 a' 0 cap; a' in
    t.src <- extend t.src;
    t.dst <- extend t.dst;
    t.cost <- extend t.cost;
    t.delay <- extend t.delay
  end

let add_edge t ~src ~dst ~cost ~delay =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Digraph.add_edge: endpoint out of range";
  grow_edges t;
  let e = t.m in
  t.m <- t.m + 1;
  t.src.(e) <- src;
  t.dst.(e) <- dst;
  t.cost.(e) <- cost;
  t.delay.(e) <- delay;
  t.out.(src) <- e :: t.out.(src);
  t.inc.(dst) <- e :: t.inc.(dst);
  e

let check_edge t e = if e < 0 || e >= t.m then invalid_arg "Digraph: bad edge id"

let src t e = check_edge t e; t.src.(e)
let dst t e = check_edge t e; t.dst.(e)
let cost t e = check_edge t e; t.cost.(e)
let delay t e = check_edge t e; t.delay.(e)

let set_cost t e c = check_edge t e; t.cost.(e) <- c
let set_delay t e d = check_edge t e; t.delay.(e) <- d

let out_edges t v = t.out.(v)
let in_edges t v = t.inc.(v)
let out_degree t v = List.length t.out.(v)
let in_degree t v = List.length t.inc.(v)

let iter_edges t f =
  for e = 0 to t.m - 1 do
    f e
  done

let fold_edges t ~init ~f =
  let acc = ref init in
  for e = 0 to t.m - 1 do
    acc := f !acc e
  done;
  !acc

let iter_out t v f = List.iter f t.out.(v)

let edges t = List.init t.m (fun e -> e)

let total_cost t = fold_edges t ~init:0 ~f:(fun acc e -> acc + t.cost.(e))
let total_delay t = fold_edges t ~init:0 ~f:(fun acc e -> acc + t.delay.(e))

let find_edge t ~src ~dst =
  List.find_opt (fun e -> t.dst.(e) = dst) t.out.(src)

let filter_map_edges t ~f =
  let g = create ~expected_edges:(max t.m 1) ~n:t.n () in
  let mapping = Array.make (max t.m 1) (-1) in
  for e = 0 to t.m - 1 do
    match f e with
    | None -> ()
    | Some (cost, delay) ->
      mapping.(e) <- add_edge g ~src:t.src.(e) ~dst:t.dst.(e) ~cost ~delay
  done;
  (g, mapping)

let reverse t =
  let r = create ~expected_edges:(max t.m 1) ~n:t.n () in
  for e = 0 to t.m - 1 do
    ignore (add_edge r ~src:t.dst.(e) ~dst:t.src.(e) ~cost:t.cost.(e) ~delay:t.delay.(e))
  done;
  r

let pp fmt t =
  Format.fprintf fmt "digraph n=%d m=%d@." t.n t.m;
  for e = 0 to t.m - 1 do
    Format.fprintf fmt "  e%d: %d -> %d (c=%d, d=%d)@." e t.src.(e) t.dst.(e) t.cost.(e)
      t.delay.(e)
  done
