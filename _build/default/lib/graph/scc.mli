(** Strongly connected components (Tarjan's algorithm, iterative). *)

type result = {
  count : int;  (** number of components *)
  component : int array;  (** component id per vertex, ids in reverse topological order *)
}

val run : Digraph.t -> result

val same_component : result -> Digraph.vertex -> Digraph.vertex -> bool
