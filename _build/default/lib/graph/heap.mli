(** Binary min-heap over integer priorities with integer payloads.

    Purpose-built for Dijkstra: no decrease-key (we push duplicates and skip
    stale pops, the standard lazy-deletion idiom), contiguous storage, no
    allocation per operation beyond occasional growth. *)

type t

val create : ?capacity:int -> unit -> t
val is_empty : t -> bool
val size : t -> int

val push : t -> prio:int -> value:int -> unit

val pop_min : t -> (int * int) option
(** [(prio, value)] with smallest [prio]; ties broken arbitrarily. *)

val clear : t -> unit
