(** Breadth-first search utilities. *)

val reachable :
  Digraph.t ->
  ?disabled:(Digraph.edge -> bool) ->
  src:Digraph.vertex ->
  unit ->
  bool array
(** [reachable g ~src ()].(v) is true iff [v] is reachable from [src]. *)

val hop_path :
  Digraph.t ->
  ?disabled:(Digraph.edge -> bool) ->
  src:Digraph.vertex ->
  dst:Digraph.vertex ->
  unit ->
  Path.t option
(** A minimum-hop path from [src] to [dst], or [None]. *)

val edge_connectivity_at_least :
  Digraph.t -> src:Digraph.vertex -> dst:Digraph.vertex -> k:int -> bool
(** True iff there exist [k] edge-disjoint [src→dst] paths (unit-capacity
    max-flow by repeated augmentation on a residual copy). Used to decide
    kRSP feasibility before running anything expensive. *)
