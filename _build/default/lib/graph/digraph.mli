(** Directed multigraphs with integer edge costs and delays.

    This is the shared substrate of the whole repository. Vertices and edges
    are dense integer identifiers ([0 .. n-1] / [0 .. m-1]); parallel edges
    and self-loops are allowed (the paper's residual graphs are explicitly
    multigraphs, footnote 1 of Definition 6). Costs and delays may be
    negative — residual graphs negate both. *)

type t

type vertex = int
type edge = int

val create : ?expected_edges:int -> n:int -> unit -> t
(** [create ~n ()] is a graph with vertices [0..n-1] and no edges. *)

val copy : t -> t

val add_vertex : t -> vertex
(** Appends a fresh vertex and returns its id. *)

val add_edge : t -> src:vertex -> dst:vertex -> cost:int -> delay:int -> edge
(** Appends an edge and returns its id. Raises [Invalid_argument] if either
    endpoint is out of range. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val src : t -> edge -> vertex
val dst : t -> edge -> vertex
val cost : t -> edge -> int
val delay : t -> edge -> int

val set_cost : t -> edge -> int -> unit
val set_delay : t -> edge -> int -> unit

val out_edges : t -> vertex -> edge list
(** Edges leaving [v], in unspecified order. *)

val in_edges : t -> vertex -> edge list

val out_degree : t -> vertex -> int
val in_degree : t -> vertex -> int

val iter_edges : t -> (edge -> unit) -> unit
val fold_edges : t -> init:'a -> f:('a -> edge -> 'a) -> 'a
val iter_out : t -> vertex -> (edge -> unit) -> unit

val edges : t -> edge list
(** All edge ids in increasing order. *)

val total_cost : t -> int
(** Sum of all edge costs ([Σ c(e)] in the paper's complexity bounds). *)

val total_delay : t -> int

val find_edge : t -> src:vertex -> dst:vertex -> edge option
(** Some edge from [src] to [dst] if one exists. *)

val reverse : t -> t
(** Graph with every edge reversed (costs/delays kept). *)

val filter_map_edges :
  t -> f:(edge -> (int * int) option) -> t * int array
(** [filter_map_edges g ~f] builds a graph over the same vertices keeping
    edge [e] with weights [(cost, delay)] when [f e = Some (cost, delay)]
    and dropping it when [f e = None]. Returns the new graph and a mapping
    [new_edge_of_old] ([-1] for dropped edges). The common idiom for
    "remove these edges" / "rescale all weights" / "swap cost and delay". *)

val pp : Format.formatter -> t -> unit
(** Debug rendering: one line per edge. *)
