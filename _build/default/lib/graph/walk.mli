(** Decomposition of balanced edge multisets into simple cycles and of
    [k]-flow edge sets into [k] paths plus cycles.

    These are the combinatorial workhorses behind Proposition 7/8 of the
    paper: the symmetric difference of two path systems is a set of
    edge-disjoint cycles, and a `⊕`-result must be re-extracted as [k]
    disjoint st-paths. *)

val decompose_cycles : Digraph.t -> Digraph.edge list -> Digraph.edge list list
(** [decompose_cycles g edges] partitions [edges] (each id used at most once)
    into vertex-simple directed cycles. Raises [Invalid_argument] if some
    vertex is unbalanced (in-degree ≠ out-degree within the multiset). *)

val decompose_st :
  Digraph.t ->
  src:Digraph.vertex ->
  dst:Digraph.vertex ->
  k:int ->
  Digraph.edge list ->
  Path.t list * Digraph.edge list list
(** [decompose_st g ~src ~dst ~k edges] splits an edge set in which [src] has
    out-degree surplus [k], [dst] in-degree surplus [k] and every other
    vertex is balanced, into exactly [k] simple [src→dst] paths and a
    (possibly empty) list of leftover simple cycles. Raises
    [Invalid_argument] when the degree condition fails. *)
