(** Paths as ordered edge lists.

    A path is the list of edge ids traversed from its first vertex to its
    last; validity (consecutive edges share endpoints) is checked on demand,
    not enforced by construction, because the cycle-cancellation machinery
    assembles paths from edge multisets. *)

type t = Digraph.edge list

val cost : Digraph.t -> t -> int
val delay : Digraph.t -> t -> int

val source : Digraph.t -> t -> Digraph.vertex
(** First vertex. Raises [Invalid_argument] on the empty path. *)

val target : Digraph.t -> t -> Digraph.vertex
(** Last vertex. Raises [Invalid_argument] on the empty path. *)

val vertices : Digraph.t -> t -> Digraph.vertex list
(** All visited vertices in order, [source :: …int :: target]. *)

val is_valid : Digraph.t -> src:Digraph.vertex -> dst:Digraph.vertex -> t -> bool
(** True iff the edge list is a (not necessarily simple) walk from [src]
    to [dst] with at least one edge, or [src = dst] and the path is empty. *)

val is_simple : Digraph.t -> t -> bool
(** True iff no vertex repeats (as an intermediate); for a cycle use
    {!is_simple_cycle}. *)

val is_simple_cycle : Digraph.t -> t -> bool
(** True iff the walk is closed and visits no vertex twice except the
    endpoints. *)

val edge_disjoint : t list -> bool
(** True iff no edge id appears in two of the paths (or twice in one). *)

val pp : Digraph.t -> Format.formatter -> t -> unit
(** Renders as [v0 ->(e) v1 ->(e) …]. *)
