(** All-pairs shortest distances (Floyd–Warshall).

    Handles negative edges and reports negative cycles; quadratic memory, so
    for small graphs only. Primarily a cross-check oracle for the
    single-source engines in tests, and the diameter/eccentricity helper the
    generators use. *)

type result =
  | Dist of int array array  (** [max_int] = unreachable *)
  | Negative_cycle

val run :
  Digraph.t -> weight:(Digraph.edge -> int) -> ?disabled:(Digraph.edge -> bool) -> unit -> result

val diameter : Digraph.t -> weight:(Digraph.edge -> int) -> int option
(** Largest finite pairwise distance; [None] on an empty/degenerate graph or
    when a negative cycle exists. *)
