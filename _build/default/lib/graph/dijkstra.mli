(** Dijkstra shortest paths for non-negative edge weights.

    The weight is an arbitrary per-edge function so the same engine serves
    cost-shortest, delay-shortest, and combined [c + λ·d] Lagrangian metrics.
    Raises [Invalid_argument] if a traversed edge has negative weight. *)

type result = {
  dist : int array;  (** [max_int] means unreachable. *)
  parent : int array;  (** parent edge id on a shortest path; [-1] at source/unreached. *)
}

val run :
  Digraph.t ->
  weight:(Digraph.edge -> int) ->
  ?disabled:(Digraph.edge -> bool) ->
  src:Digraph.vertex ->
  unit ->
  result
(** Single-source shortest distances. [disabled e = true] hides edge [e]. *)

val path_to : Digraph.t -> result -> Digraph.vertex -> Path.t option
(** Reconstructs the edge list from the run's source to [v]; [None] when
    unreachable. *)

val shortest_path :
  Digraph.t ->
  weight:(Digraph.edge -> int) ->
  ?disabled:(Digraph.edge -> bool) ->
  src:Digraph.vertex ->
  dst:Digraph.vertex ->
  unit ->
  (int * Path.t) option
(** Distance and one shortest path, or [None] if unreachable. *)
