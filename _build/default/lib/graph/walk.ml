module G = Digraph

(* Adjacency restricted to the given edge multiset: vertex -> mutable list of
   unused outgoing edges. *)
let build_adjacency g edges =
  let adj = Hashtbl.create 64 in
  let balance = Hashtbl.create 64 in
  let bump v d =
    Hashtbl.replace balance v (d + Option.value ~default:0 (Hashtbl.find_opt balance v))
  in
  List.iter
    (fun e ->
      let u = G.src g e in
      let existing = Option.value ~default:[] (Hashtbl.find_opt adj u) in
      Hashtbl.replace adj u (e :: existing);
      bump u 1;
      bump (G.dst g e) (-1))
    edges;
  (adj, balance)

let pop_out adj v =
  match Hashtbl.find_opt adj v with
  | None | Some [] -> None
  | Some (e :: rest) ->
    Hashtbl.replace adj v rest;
    Some e

(* Walk forward from [start] until [stop_at] answers true for the current
   vertex, popping enclosed simple cycles onto [cycles] along the way.
   Returns the simple path walked (start .. final vertex). The stack holds
   (vertex, edge taken *from* that vertex). *)
let walk_simple g adj ~start ~stop_at ~cycles =
  let rec go stack v =
    if stop_at v stack then List.rev_map snd stack
    else begin
      match pop_out adj v with
      | None ->
        (* dead end: only possible at the designated stop vertex when degrees
           are consistent; treat as stop *)
        List.rev_map snd stack
      | Some e ->
        let w = G.dst g e in
        (* If w is already on the stack, pop the enclosed cycle. The scan
           runs from the top of the stack (most recent edge, which is [e]
           itself) downward, so [acc] ends up in forward path order. *)
        let rec split acc = function
          | (u, eu) :: rest when u <> w -> split ((u, eu) :: acc) rest
          | (u, eu) :: rest ->
            (* u = w: the cycle is eu followed by the edges accumulated so
               far (which already include [e] at the tail) *)
            ignore u;
            Some (eu :: List.map snd acc, rest)
          | [] -> None
        in
        if w = start && stack = [] then begin
          (* immediate self-returning cycle from start *)
          cycles := [ e ] :: !cycles;
          go stack v
        end
        else begin
          match split [] ((v, e) :: stack) with
          | Some (cycle_edges, rest) ->
            (* the found cycle starts and ends at w *)
            cycles := cycle_edges :: !cycles;
            go rest w
          | None -> go ((v, e) :: stack) w
        end
    end
  in
  go [] start

let decompose_cycles g edges =
  let adj, balance = build_adjacency g edges in
  Hashtbl.iter
    (fun _ b -> if b <> 0 then invalid_arg "Walk.decompose_cycles: unbalanced vertex")
    balance;
  let cycles = ref [] in
  let remaining = Hashtbl.copy adj in
  let rec drain () =
    (* find any vertex with an unused out edge *)
    let start = Hashtbl.fold (fun v es acc -> if es <> [] then Some v else acc) remaining None in
    match start with
    | None -> ()
    | Some v ->
      (* walking from v must come back to v, popping cycles as it goes; the
         walk itself ends as a (possibly empty) path v..v which is itself a
         cycle when non-empty *)
      let path = walk_simple g remaining ~start:v ~stop_at:(fun u stack -> u = v && stack <> []) ~cycles in
      if path <> [] then cycles := path :: !cycles;
      drain ()
  in
  drain ();
  !cycles

let decompose_st g ~src ~dst ~k edges =
  let adj, balance = build_adjacency g edges in
  let bal v = Option.value ~default:0 (Hashtbl.find_opt balance v) in
  if bal src <> k || bal dst <> -k then
    invalid_arg "Walk.decompose_st: source/sink surplus mismatch";
  Hashtbl.iter
    (fun v b ->
      if v <> src && v <> dst && b <> 0 then
        invalid_arg "Walk.decompose_st: unbalanced interior vertex")
    balance;
  let cycles = ref [] in
  let paths = ref [] in
  for _ = 1 to k do
    let p = walk_simple g adj ~start:src ~stop_at:(fun u _ -> u = dst) ~cycles in
    paths := p :: !paths
  done;
  (* leftovers are balanced: decompose them as cycles *)
  let leftover = Hashtbl.fold (fun _ es acc -> es @ acc) adj [] in
  let leftover_cycles = if leftover = [] then [] else decompose_cycles g leftover in
  (List.rev !paths, !cycles @ leftover_cycles)
