lib/graph/yen.ml: Digraph Dijkstra Hashtbl List
