lib/graph/bfs.mli: Digraph Path
