lib/graph/heap.mli:
