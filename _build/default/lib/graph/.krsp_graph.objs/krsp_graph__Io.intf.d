lib/graph/io.mli: Digraph
