lib/graph/dijkstra.mli: Digraph Path
