lib/graph/karp.mli: Digraph Path
