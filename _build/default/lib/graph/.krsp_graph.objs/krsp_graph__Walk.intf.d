lib/graph/walk.mli: Digraph Path
