lib/graph/io.ml: Array Buffer Digraph Fun List Printf String
