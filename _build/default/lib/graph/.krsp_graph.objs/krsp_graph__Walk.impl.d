lib/graph/walk.ml: Digraph Hashtbl List Option
