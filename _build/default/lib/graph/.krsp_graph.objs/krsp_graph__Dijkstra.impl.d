lib/graph/dijkstra.ml: Array Digraph Heap
