lib/graph/yen.mli: Digraph Path
