lib/graph/path.ml: Digraph Format Hashtbl List
