lib/graph/bfs.ml: Array Digraph List Queue
