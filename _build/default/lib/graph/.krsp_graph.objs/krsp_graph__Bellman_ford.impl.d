lib/graph/bellman_ford.ml: Array Digraph Path Queue
