type t = { mutable prio : int array; mutable value : int array; mutable size : int }

let create ?(capacity = 16) () =
  let cap = max capacity 1 in
  { prio = Array.make cap 0; value = Array.make cap 0; size = 0 }

let is_empty t = t.size = 0
let size t = t.size

let swap t i j =
  let p = t.prio.(i) and v = t.value.(i) in
  t.prio.(i) <- t.prio.(j);
  t.value.(i) <- t.value.(j);
  t.prio.(j) <- p;
  t.value.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(i) < t.prio.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.prio.(l) < t.prio.(!smallest) then smallest := l;
  if r < t.size && t.prio.(r) < t.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~prio ~value =
  let cap = Array.length t.prio in
  if t.size >= cap then begin
    let cap' = 2 * cap in
    let extend a = let a' = Array.make cap' 0 in Array.blit a 0 a' 0 cap; a' in
    t.prio <- extend t.prio;
    t.value <- extend t.value
  end;
  t.prio.(t.size) <- prio;
  t.value.(t.size) <- value;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then None
  else begin
    let p = t.prio.(0) and v = t.value.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.prio.(0) <- t.prio.(t.size);
      t.value.(0) <- t.value.(t.size);
      sift_down t 0
    end;
    Some (p, v)
  end

let clear t = t.size <- 0
