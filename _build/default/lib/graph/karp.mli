(** Karp's minimum mean cycle algorithm.

    Used by the Orda–Sprintson-style baseline, which cancels minimum-mean
    cycles in a residual graph whose reversed edges carry zero (not negated)
    cost — the restriction our paper's bicameral-cycle machinery removes. *)

val min_mean_cycle :
  Digraph.t ->
  weight:(Digraph.edge -> int) ->
  ?disabled:(Digraph.edge -> bool) ->
  unit ->
  ((int * int) * Path.t) option
(** [min_mean_cycle g ~weight ()] is [Some ((num, den), cycle)] where
    [num/den] is the minimum mean weight over all directed cycles and
    [cycle] attains it, or [None] on an acyclic graph. [den > 0]. *)
