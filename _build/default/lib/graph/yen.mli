(** Yen's algorithm: the K loopless shortest paths between two vertices.

    Needed by the path-enumeration baseline and by the routing examples
    (alternative route candidates). Non-negative weights (each spur search
    runs Dijkstra). *)

val k_shortest :
  Digraph.t ->
  weight:(Digraph.edge -> int) ->
  src:Digraph.vertex ->
  dst:Digraph.vertex ->
  k:int ->
  (int * Path.t) list
(** At most [k] simple paths in non-decreasing weight order (fewer when the
    graph has fewer simple paths). *)
