(** Lorenz–Raz style FPTAS for the single restricted shortest path.

    This is the "traditional technique for polynomial time approximation
    scheme design" the paper's Theorem 4 invokes (reference [17] there):
    interval narrowing with an approximate test procedure, then one final
    cost-scaled dynamic program. Returns a path with delay ≤ D and cost
    ≤ (1+ε)·OPT in time polynomial in the input size and 1/ε. *)

type result = {
  path : Krsp_graph.Path.t;
  cost : int;
  delay : int;
}

val solve :
  Krsp_graph.Digraph.t ->
  src:Krsp_graph.Digraph.vertex ->
  dst:Krsp_graph.Digraph.vertex ->
  delay_bound:int ->
  epsilon:float ->
  result option
(** [None] when no path meets the delay bound. Requires [epsilon > 0] and
    non-negative costs/delays. *)
