lib/rsp/rsp_dp.mli: Krsp_graph
