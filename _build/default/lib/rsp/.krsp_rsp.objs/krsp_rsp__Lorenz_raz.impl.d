lib/rsp/lorenz_raz.ml: Krsp_graph Larac Rsp_dp
