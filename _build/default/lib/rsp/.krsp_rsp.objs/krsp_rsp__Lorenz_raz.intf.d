lib/rsp/lorenz_raz.mli: Krsp_graph
