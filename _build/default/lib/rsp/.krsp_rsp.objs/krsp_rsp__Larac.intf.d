lib/rsp/larac.mli: Krsp_graph
