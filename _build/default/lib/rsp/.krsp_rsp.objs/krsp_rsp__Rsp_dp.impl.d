lib/rsp/rsp_dp.ml: Array Krsp_graph
