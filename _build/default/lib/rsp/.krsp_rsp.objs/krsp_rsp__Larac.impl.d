lib/rsp/larac.ml: Krsp_graph
