module G = Krsp_graph.Digraph
module Path = Krsp_graph.Path
module Dijkstra = Krsp_graph.Dijkstra

type result = { path : Path.t; cost : int; delay : int; lower_bound : int }

(* Aggregated shortest path under weight num·d + den·c (λ = num/den kept as
   an integer pair so Dijkstra runs on exact integer weights). *)
let aggregated g ~src ~dst ~num ~den =
  let weight e = (den * G.cost g e) + (num * G.delay g e) in
  Dijkstra.shortest_path g ~weight ~src ~dst ()

let solve g ~src ~dst ~delay_bound =
  let eval p = (Path.cost g p, Path.delay g p) in
  match Dijkstra.shortest_path g ~weight:(G.cost g) ~src ~dst () with
  | None -> None
  | Some (_, pc) ->
    let c_pc, d_pc = eval pc in
    if d_pc <= delay_bound then
      (* unconstrained optimum already feasible: exact *)
      Some { path = pc; cost = c_pc; delay = d_pc; lower_bound = c_pc }
    else begin
      match Dijkstra.shortest_path g ~weight:(G.delay g) ~src ~dst () with
      | None -> None
      | Some (_, pd) ->
        let c_pd, d_pd = eval pd in
        if d_pd > delay_bound then None (* even the fastest path is too slow *)
        else begin
          (* classic LARAC iteration on (pc: infeasible & cheap, pd: feasible
             & costly); λ = (c_pd − c_pc) / (d_pc − d_pd) ≥ 0 as num/den *)
          let rec iterate (c_pc, d_pc) pd (c_pd, d_pd) =
            let num = c_pd - c_pc and den = d_pc - d_pd in
            assert (num >= 0 && den > 0);
            if num = 0 then
              (* cheap path cost equals feasible path cost: pd optimal *)
              { path = pd; cost = c_pd; delay = d_pd; lower_bound = c_pd }
            else begin
              match aggregated g ~src ~dst ~num ~den with
              | None -> assert false (* reachable: pd exists *)
              | Some (_, r) ->
                let c_r, d_r = eval r in
                let agg p_c p_d = (den * p_c) + (num * p_d) in
                if agg c_r d_r = agg c_pc d_pc then begin
                  (* λ is optimal: lower bound L(λ) = c_r + λ(d_r − D) *)
                  let lb_num = (den * c_r) + (num * (d_r - delay_bound)) in
                  let lb = lb_num / den in
                  { path = pd; cost = c_pd; delay = d_pd; lower_bound = lb }
                end
                else if d_r <= delay_bound then iterate (c_pc, d_pc) r (c_r, d_r)
                else iterate (c_r, d_r) pd (c_pd, d_pd)
            end
          in
          Some (iterate (c_pc, d_pc) pd (c_pd, d_pd))
        end
    end
