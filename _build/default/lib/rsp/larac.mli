(** LARAC — Lagrangian relaxation for the single restricted shortest path.

    The classical polynomial heuristic for RSP: binary/secant search over the
    multiplier λ of the aggregated metric [c + λ·d]. Returns both a feasible
    path (delay ≤ D, cost within the Lagrangian gap of optimal) and the
    Lagrangian lower bound on the optimum, which the FPTAS and the
    experiments use as a certified [C_OPT] lower bound. *)

type result = {
  path : Krsp_graph.Path.t;  (** feasible: delay ≤ D *)
  cost : int;
  delay : int;
  lower_bound : int;  (** the Lagrangian dual value at the final multiplier,
                          rounded down: a valid lower bound on OPT *)
}

val solve :
  Krsp_graph.Digraph.t ->
  src:Krsp_graph.Digraph.vertex ->
  dst:Krsp_graph.Digraph.vertex ->
  delay_bound:int ->
  result option
(** [None] when no path meets the delay bound at all. Requires non-negative
    costs and delays. *)
