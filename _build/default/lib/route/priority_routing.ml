module Path = Krsp_graph.Path

type traffic_class = { name : string; priority : int; volume : float }

type path_info = { path : Path.t; path_delay : int; load : float }

type assignment = {
  per_class : (string * (int * float) list) list;
  paths : path_info list;
  class_delay : (string * float) list;
  overflow : float;
}

let assign g ~paths ~classes =
  List.iter
    (fun c -> if c.volume < 0. then invalid_arg "Priority_routing.assign: negative volume")
    classes;
  let infos =
    List.map (fun p -> { path = p; path_delay = Path.delay g p; load = 0. }) paths
    |> List.sort (fun a b -> compare a.path_delay b.path_delay)
  in
  let infos = Array.of_list infos in
  let ordered = List.stable_sort (fun a b -> compare a.priority b.priority) classes in
  let overflow = ref 0. in
  let per_class =
    List.map
      (fun c ->
        (* water-fill the class's volume onto the fastest paths with room *)
        let remaining = ref c.volume in
        let chunks = ref [] in
        Array.iteri
          (fun i info ->
            if !remaining > 0. then begin
              let room = Float.max 0. (1.0 -. info.load) in
              let take = Float.min room !remaining in
              if take > 0. then begin
                infos.(i) <- { info with load = info.load +. take };
                chunks := (i, take) :: !chunks;
                remaining := !remaining -. take
              end
            end)
          infos;
        overflow := !overflow +. !remaining;
        (c.name, List.rev !chunks))
      ordered
  in
  let class_delay =
    List.map
      (fun (name, chunks) ->
        let vol = List.fold_left (fun acc (_, v) -> acc +. v) 0. chunks in
        let weighted =
          List.fold_left
            (fun acc (i, v) -> acc +. (v *. float_of_int infos.(i).path_delay))
            0. chunks
        in
        (name, if vol > 0. then weighted /. vol else 0.))
      per_class
  in
  { per_class; paths = Array.to_list infos; class_delay; overflow = !overflow }

let mean_delay a =
  let vol, weighted =
    List.fold_left
      (fun (v, w) info -> (v +. info.load, w +. (info.load *. float_of_int info.path_delay)))
      (0., 0.) a.paths
  in
  if vol > 0. then weighted /. vol else 0.

let urgency_respected a =
  (* classes appear in priority order in [class_delay]; carried classes must
     have non-decreasing delay *)
  let carried =
    List.filter_map
      (fun (name, d) ->
        let chunks = List.assoc name a.per_class in
        if chunks = [] then None else Some d)
      a.class_delay
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  monotone carried
