lib/route/priority_routing.mli: Krsp_graph
