lib/route/priority_routing.ml: Array Float Krsp_graph List
