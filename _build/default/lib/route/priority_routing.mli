(** Priority-aware traffic assignment over a kRSP solution.

    The paper's introduction justifies bounding the paths' *total* delay
    (instead of each path individually) by the deployment model: "route
    urgent packages via paths of low delay whilst deferrable ones via paths
    of high delay". This module implements that dispatcher: traffic classes
    sorted by urgency are water-filled onto the k paths sorted by delay,
    each path carrying one unit of capacity. The resulting per-class delays
    certify the promise — the most urgent traffic rides the fastest path,
    and the volume-weighted average delay is at most [Σᵢ d(Pᵢ) / k ≤ D / k]
    when all paths are equally loaded. *)

type traffic_class = {
  name : string;
  priority : int;  (** lower = more urgent *)
  volume : float;  (** demand in capacity units; each path carries 1.0 *)
}

type path_info = {
  path : Krsp_graph.Path.t;
  path_delay : int;
  load : float;  (** total volume assigned, ≤ 1.0 unless overloaded *)
}

type assignment = {
  per_class : (string * (int * float) list) list;
      (** class name → [(path index, volume carried)] *)
  paths : path_info list;  (** sorted by increasing delay *)
  class_delay : (string * float) list;
      (** volume-weighted mean path delay experienced by each class *)
  overflow : float;  (** demand that exceeded total capacity [k] *)
}

val assign :
  Krsp_graph.Digraph.t ->
  paths:Krsp_graph.Path.t list ->
  classes:traffic_class list ->
  assignment
(** Water-fill classes (most urgent first) onto paths (fastest first).
    Raises [Invalid_argument] on negative volumes. *)

val mean_delay : assignment -> float
(** Overall volume-weighted mean delay of the carried traffic (0 when
    nothing is carried). *)

val urgency_respected : assignment -> bool
(** True iff no strictly-more-urgent class experiences a strictly larger
    mean delay than a less urgent one — the invariant of the paper's
    dispatching argument. *)
