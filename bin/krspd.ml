(* krspd — the kRSP query-serving daemon.

   Loads a topology once, then serves SOLVE/QOS/FAIL/RESTORE/STATS/PING
   requests over a Unix-domain socket, TCP, or stdio (see
   Krsp_server.Protocol for the grammar). SIGUSR1 dumps the metrics
   registry to stderr without disturbing clients. *)

open Cmdliner
module Io = Krsp_graph.Io
module Engine = Krsp_server.Engine
module Server = Krsp_server.Server
module Metrics = Krsp_util.Metrics

let graph_file =
  Arg.(
    required
    & opt (some string) None
    & info [ "graph"; "g" ] ~docv:"FILE" ~doc:"Topology in edge-list format (see Io).")

let unix_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "unix"; "u" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket at $(docv).")

let tcp_port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Listen on TCP $(docv) (see $(b,--host)).")

let tcp_host =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Bind address for $(b,--port).")

let cache_size =
  Arg.(
    value
    & opt int Engine.default_config.Engine.cache_capacity
    & info [ "cache" ] ~docv:"N" ~doc:"Solution-cache capacity (LRU entries).")

let engine_arg =
  Arg.(
    value & opt string "dp"
    & info [ "engine" ] ~docv:"ENGINE" ~doc:"Bicameral search engine: dp or lp.")

let run graph_file unix_path tcp_port tcp_host cache_size engine_name =
  let g =
    try Io.of_edge_list (Io.read_file graph_file)
    with Failure msg | Sys_error msg ->
      Printf.eprintf "krspd: cannot load %s: %s\n" graph_file msg;
      exit 3
  in
  let solver = match engine_name with "lp" -> Krsp_core.Krsp.Lp | _ -> Krsp_core.Krsp.Dp in
  let config = { Engine.default_config with Engine.cache_capacity = cache_size; solver } in
  let engine = Engine.create ~config g in
  Sys.set_signal Sys.sigusr1
    (Sys.Signal_handle
       (fun _ -> Printf.eprintf "--- krspd metrics ---\n%s\n%!" (Metrics.dump (Engine.metrics engine))));
  (* a client hanging up mid-write must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match (unix_path, tcp_port) with
  | Some path, _ ->
    Server.listen_and_serve engine (Server.Unix_socket path) ~on_listen:(fun () ->
        Printf.eprintf "krspd: serving on unix:%s (pid %d)\n%!" path (Unix.getpid ()));
    0
  | None, Some port ->
    Server.listen_and_serve engine (Server.Tcp (tcp_host, port)) ~on_listen:(fun () ->
        Printf.eprintf "krspd: serving on %s:%d (pid %d)\n%!" tcp_host port (Unix.getpid ()));
    0
  | None, None ->
    (* stdio mode: one session on stdin/stdout, handy for piping and tests *)
    Server.serve_channels engine stdin stdout;
    0

let cmd =
  let doc = "serve kRSP queries against a long-lived topology" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Loads the topology once and answers line-oriented requests: SOLVE src dst k D [eps], \
         QOS src dst k D, FAIL u v, RESTORE u v, STATS, PING. Responses are single lines \
         (SOLUTION/MUTATED/STATS/PONG/ERR). Without $(b,--unix) or $(b,--port) the daemon \
         serves a single session on stdin/stdout.";
      `P
        "Solutions are cached (LRU, keyed by query and topology generation); FAIL/RESTORE \
         invalidate only affected entries, and repeated queries after a failure are re-solved \
         from the previous solution (warm start) instead of from scratch. Send SIGUSR1 for a \
         metrics dump on stderr.";
      `S Manpage.s_exit_status;
      `P "0 on clean shutdown (EOF in stdio mode); 3 when the topology cannot be loaded."
    ]
  in
  Cmd.v
    (Cmd.info "krspd" ~version:Bin_version.version ~doc ~man)
    Term.(const run $ graph_file $ unix_path $ tcp_port $ tcp_host $ cache_size $ engine_arg)

let () = exit (Cmd.eval' cmd)
