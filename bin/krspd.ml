(* krspd — the kRSP query-serving daemon.

   Loads a topology once, then serves SOLVE/QOS/FAIL/RESTORE/STATS/PING/
   TRACE requests over a Unix-domain socket, TCP, or stdio (see
   Krsp_server.Protocol for the grammar) from a fleet of engine shards
   (see Krsp_server.Shard). SIGUSR1 dumps the per-shard and aggregated
   metrics to stderr and SIGUSR2 exports the span rings as a Chrome trace
   file, both without disturbing clients; SIGTERM drains the fleet
   gracefully and exits 0. *)

open Cmdliner
module Io = Krsp_graph.Io
module Engine = Krsp_server.Engine
module Shard = Krsp_server.Shard
module Server = Krsp_server.Server
module Metrics = Krsp_util.Metrics
module Trace = Krsp_obs.Trace
module Telemetry = Krsp_obs.Telemetry

let graph_file =
  Arg.(
    required
    & opt (some string) None
    & info [ "graph"; "g" ] ~docv:"FILE" ~doc:"Topology in edge-list format (see Io).")

let unix_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "unix"; "u" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket at $(docv).")

let tcp_port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Listen on TCP $(docv) (see $(b,--host)).")

let tcp_host =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Bind address for $(b,--port).")

let cache_size =
  Arg.(
    value
    & opt int Engine.default_config.Engine.cache_capacity
    & info [ "cache" ] ~docv:"N" ~doc:"Solution-cache capacity (LRU entries) per shard.")

let engine_arg =
  Arg.(
    value & opt string "dp"
    & info [ "engine" ] ~docv:"ENGINE" ~doc:"Bicameral search engine: dp or lp.")

let numeric_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "numeric" ] ~docv:"TIER"
        ~doc:
          "Numeric tier for every LP/DP the solver runs: $(b,float) (default; \
           double-precision first, certificate-gated exact fallback) or $(b,exact) \
           (rational arithmetic only). Default: $(b,KRSP_NUMERIC) when set, else float. \
           Answers are exact at either tier; the fallback counters appear in STATS as \
           numeric.*.")

let rsp_oracle_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rsp-oracle" ] ~docv:"ORACLE"
        ~doc:
          "RSP engine behind every k=1 solve: $(b,dp) (exact pseudo-polynomial), \
           $(b,larac) (Lagrangian heuristic, always certificate-gated), $(b,lorenz-raz) \
           (reference FPTAS) or $(b,holzmuller) (default; fast FPTAS). Default: \
           $(b,KRSP_RSP_ORACLE) when set, else holzmuller. Answers that could flip a \
           feasibility verdict fall back to the exact DP; the oracle counters appear in \
           STATS as rsp.oracle_*.")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards"; "s" ] ~docv:"N"
        ~doc:
          "Number of engine shards. Each shard owns a private engine (cache, frozen \
           topology views, solver pool) and a bounded admission queue drained by its own \
           domain; queries are routed by a hash of (src, dst) so repeat queries hit their \
           shard's cache, and FAIL/RESTORE are broadcast to all shards behind a generation \
           barrier. Default: $(b,KRSP_SHARDS) when set, else 1.")

let queue_bound_arg =
  Arg.(
    value
    & opt int Shard.default_queue_bound
    & info [ "queue-bound" ] ~docv:"N"
        ~doc:
          "Admission-queue bound per shard. When a shard's queue is full, new requests \
           routed to it are shed with $(b,ERR overload retry-after-ms=...) instead of \
           queueing unboundedly — offered load beyond capacity degrades by shedding while \
           the latency of admitted requests stays bounded.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Solver-pool width per shard (parallel cycle searches and guess bisection \
           within one solve). Default: $(b,KRSP_DOMAINS) when set, else the machine's \
           recommended domain count divided by the shard count. $(docv)=1 disables \
           within-solve parallelism; total domains are roughly shards × $(docv).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"POLICY"
        ~doc:
          "Request-tracing policy: $(b,off), $(b,slow:<ms>) (keep and log only requests \
           slower than the threshold), $(b,sample:<N>) (keep one request in N) or \
           $(b,all). Kept requests' phase spans accumulate in ring buffers, exported as \
           Chrome trace-event JSON by the TRACE request or SIGUSR2. Default: \
           $(b,KRSP_TRACE) when set, else off.")

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-file" ] ~docv:"FILE"
        ~doc:
          "Where SIGUSR2 writes the Chrome trace export. Default: \
           krspd-trace.<pid>.json in the working directory.")

let topology_arg =
  Arg.(
    value
    & opt string "overlay"
    & info [ "topology" ] ~docv:"MODE"
        ~doc:
          "How mutations (FAIL/RESTORE/MUTATE) reach the solver's adjacency view: \
           $(b,overlay) (default; patch the last full CSR through a delta overlay, \
           compacting when the patch outgrows its budget) or $(b,refreeze) (rebuild the \
           full view on every mutation — the baseline the churn suite compares against). \
           Both produce bit-identical views; only the cost of absorbing churn differs. \
           Counters appear in STATS as topo.*.")

let invalidation_arg =
  Arg.(
    value
    & opt string "scoped"
    & info [ "invalidation" ] ~docv:"POLICY"
        ~doc:
          "Cache invalidation on restrictive mutations (FAIL, del, non-decreasing \
           re-weights): $(b,scoped) (default; drop only entries whose cached solution \
           touches a mutated edge, via the edge-to-key reverse index) or $(b,full) (flush \
           the whole cache on every mutation). Expansive mutations (RESTORE, ins, weight \
           decreases) always flush fully — they can improve any query.")

let telemetry_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "telemetry-port" ] ~docv:"PORT"
        ~doc:
          "Serve the Prometheus text exposition of the merged metrics registries on \
           http://127.0.0.1:$(docv)/ (any path; one scrape per connection). 0 picks an \
           ephemeral port (printed on stderr).")

let run graph_file unix_path tcp_port tcp_host cache_size engine_name numeric rsp_oracle
    shards queue_bound domains trace_policy trace_file topology invalidation telemetry_port =
  let g =
    try Io.of_edge_list (Io.read_file graph_file)
    with Failure msg | Sys_error msg ->
      Printf.eprintf "krspd: cannot load %s: %s\n" graph_file msg;
      exit 3
  in
  let solver = match engine_name with "lp" -> Krsp_core.Krsp.Lp | _ -> Krsp_core.Krsp.Dp in
  let numeric =
    match numeric with
    | None -> None
    | Some s -> (
      match Krsp_numeric.Numeric.tier_of_string s with
      | Ok tier ->
        (* also pin the process default so LPs outside the engine config's
           reach (e.g. KRSP_CERTIFY's Full-level audit) follow the flag *)
        Krsp_numeric.Numeric.set_default tier;
        Some tier
      | Error msg ->
        Printf.eprintf "krspd: --numeric: %s\n" msg;
        exit 3)
  in
  let rsp_oracle =
    match rsp_oracle with
    | None -> None
    | Some s -> (
      match Krsp_rsp.Oracle.of_string s with
      | Ok kind ->
        (* pin the process default too, for oracle calls outside the
           engine config's reach *)
        Krsp_rsp.Oracle.set_default kind;
        Some kind
      | Error msg ->
        Printf.eprintf "krspd: --rsp-oracle: %s\n" msg;
        exit 3)
  in
  let overlay_views =
    match topology with
    | "overlay" -> true
    | "refreeze" -> false
    | s ->
      Printf.eprintf "krspd: --topology: unknown mode %S (want overlay or refreeze)\n" s;
      exit 3
  in
  let scoped_invalidation =
    match invalidation with
    | "scoped" -> true
    | "full" -> false
    | s ->
      Printf.eprintf "krspd: --invalidation: unknown policy %S (want scoped or full)\n" s;
      exit 3
  in
  let config =
    {
      Engine.default_config with
      Engine.cache_capacity = cache_size;
      solver;
      numeric;
      rsp_oracle;
      overlay_views;
      scoped_invalidation;
    }
  in
  let shards =
    match shards with
    | Some n -> max 1 n
    | None -> ( match Shard.env_shards () with Some n -> n | None -> 1)
  in
  let domains_per_shard =
    match domains with
    | Some n -> max 1 n
    | None -> (
      match Krsp_util.Pool.env_width () with
      | Some w -> w
      | None -> max 1 (Domain.recommended_domain_count () / shards))
  in
  (match trace_policy with
  | None -> ()
  | Some s -> (
    match Trace.policy_of_string s with
    | Ok p -> Trace.set_policy p
    | Error msg ->
      Printf.eprintf "krspd: --trace: %s\n" msg;
      exit 3));
  let fleet = Shard.create ~config ~queue_bound ~domains_per_shard ~shards g in
  (match Krsp_check.Hook.install_from_env () with
  | Some level ->
    Printf.eprintf "krspd: KRSP_CERTIFY on — every solve is post-checked (%s)\n%!"
      (match level with Krsp_check.Check.Full -> "full" | Krsp_check.Check.Structural -> "structural")
  | None -> ());
  let telemetry =
    match telemetry_port with
    | None -> None
    | Some port ->
      let srv = Telemetry.start ~port (fun () -> Shard.prometheus fleet) in
      Printf.eprintf "krspd: telemetry on http://127.0.0.1:%d/ (pid %d)\n%!"
        (Telemetry.port srv) (Unix.getpid ());
      Some srv
  in
  (* Signal handlers only flip flags: composing a dump or an export takes
     locks and allocates, none of which is safe inside a handler. The
     serving loop's on_tick drains the flags on the front's domain —
     select wakes on EINTR, so the work runs promptly. *)
  let want_dump = Atomic.make false in
  let want_trace_export = Atomic.make false in
  let trace_file =
    match trace_file with
    | Some f -> f
    | None -> Printf.sprintf "krspd-trace.%d.json" (Unix.getpid ())
  in
  let drain_signals () =
    if Atomic.exchange want_dump false then begin
      (* one string, one write: per-shard sections never interleave *)
      let s = "--- krspd metrics ---\n" ^ Shard.dump fleet in
      try ignore (Unix.write_substring Unix.stderr s 0 (String.length s))
      with Unix.Unix_error _ -> ()
    end;
    if Atomic.exchange want_trace_export false then begin
      match Engine.trace_response (Some trace_file) with
      | Krsp_server.Protocol.Traced { file; events } ->
        Printf.eprintf "krspd: trace exported: %d span(s) -> %s\n%!" events file
      | resp ->
        Printf.eprintf "krspd: trace export failed: %s\n%!"
          (Krsp_server.Protocol.print_response resp)
    end
  in
  (try
     Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> Atomic.set want_dump true));
     Sys.set_signal Sys.sigusr2 (Sys.Signal_handle (fun _ -> Atomic.set want_trace_export true))
   with Invalid_argument _ -> ());
  (* a client hanging up mid-write must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let finish code =
    (match telemetry with Some srv -> Telemetry.stop srv | None -> ());
    code
  in
  match (unix_path, tcp_port) with
  | None, None ->
    (* stdio mode: one session on stdin/stdout, handy for piping and tests *)
    Server.serve_channels ~on_tick:drain_signals fleet stdin stdout;
    Shard.shutdown fleet;
    drain_signals ();
    finish 0
  | _ ->
    (* SIGTERM → graceful drain: stop accepting, finish every admitted
       request, write the replies, exit 0 *)
    let stop = ref false in
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true))
     with Invalid_argument _ -> ());
    let endpoint, describe =
      match (unix_path, tcp_port) with
      | Some path, _ ->
        (Server.Unix_socket path, Printf.sprintf "unix:%s" path)
      | None, Some port -> (Server.Tcp (tcp_host, port), Printf.sprintf "%s:%d" tcp_host port)
      | None, None -> assert false
    in
    Server.listen_and_serve fleet endpoint ~stop ~on_tick:drain_signals
      ~on_listen:(fun () ->
        Printf.eprintf "krspd: serving on %s (pid %d, %d shard(s))\n%!" describe
          (Unix.getpid ()) (Shard.shards fleet));
    Printf.eprintf "krspd: drained, bye\n%!";
    finish 0

let cmd =
  let doc = "serve kRSP queries against a long-lived topology" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Loads the topology once and answers line-oriented requests: SOLVE src dst k D [eps], \
         QOS src dst k D, FAIL u v, RESTORE u v, MUTATE op.., STATS, PING. Responses are \
         single lines (SOLUTION/MUTATED/STATS/PONG/ERR). Without $(b,--unix) or $(b,--port) \
         the daemon serves a single session on stdin/stdout.";
      `P
        "With $(b,--shards) N (or KRSP_SHARDS) the daemon runs N engine shards, each with a \
         private solution cache, topology view and solver pool, fed by bounded admission \
         queues. Queries are routed by a hash of (src, dst) — stable across topology \
         generations so caches and warm-start donors stay co-located — while FAIL/RESTORE \
         are applied to every shard behind a generation barrier (no shard answers from a \
         newer topology generation than another). When a shard's queue is full the request \
         is shed with $(b,ERR overload retry-after-ms=...): back off at least that long and \
         retry. STATS and SIGUSR1 report both the fleet-aggregated view and per-shard \
         queue depths, busy time and caches.";
      `P
        "The topology is fully dynamic: FAIL/RESTORE down and revive links, and \
         $(b,MUTATE ins:u:v:c:d del:u:v rew:u:v:c:d ..) applies a batched edit under a \
         single generation bump. Mutations reach the solver through delta-overlay CSR \
         patching ($(b,--topology)), solutions are cached (LRU) with churn-scoped \
         invalidation ($(b,--invalidation)), and repeated queries after a mutation are \
         re-solved from the previous solution (warm start, with single-link damage \
         repaired incrementally) instead of from scratch. Send SIGUSR1 for a metrics dump \
         on stderr. SIGTERM drains gracefully: the daemon stops accepting, completes every \
         admitted request, then exits 0.";
      `P
        "With $(b,--trace) (or KRSP_TRACE) each kept request records phase-attributed spans \
         (queue wait, prologue, solve rounds, oracle calls, certificate checks). \
         $(b,TRACE [file]) exports them as Chrome trace-event JSON — inline as a \
         $(b,TRACE-JSON) response or to a file — and SIGUSR2 does the same to \
         $(b,--trace-file). Under $(b,slow:<ms>) every kept request additionally emits one \
         structured slow-request line on stderr. $(b,--telemetry-port) serves the merged \
         metrics registries as a Prometheus text exposition.";
      `P
        "With $(b,--domains) > 1 each shard's solver additionally parallelises its cycle \
         searches and guess bisection on a private domain pool (results are identical at \
         any width). Pool counters appear in STATS.";
      `S Manpage.s_exit_status;
      `P
        "0 on clean shutdown (EOF in stdio mode, or SIGTERM after a graceful drain); 3 when \
         the topology cannot be loaded. Note that $(b,ERR overload) is a per-request \
         response, not a daemon failure: the daemon keeps serving and the shed request can \
         be retried."
    ]
  in
  Cmd.v
    (Cmd.info "krspd" ~version:Bin_version.version ~doc ~man)
    Term.(
      const run $ graph_file $ unix_path $ tcp_port $ tcp_host $ cache_size $ engine_arg
      $ numeric_arg $ rsp_oracle_arg $ shards_arg $ queue_bound_arg $ domains_arg
      $ trace_arg $ trace_file_arg $ topology_arg $ invalidation_arg $ telemetry_port_arg)

let () = exit (Cmd.eval' cmd)
