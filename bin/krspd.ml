(* krspd — the kRSP query-serving daemon.

   Loads a topology once, then serves SOLVE/QOS/FAIL/RESTORE/STATS/PING
   requests over a Unix-domain socket, TCP, or stdio (see
   Krsp_server.Protocol for the grammar). SIGUSR1 dumps the metrics
   registry to stderr without disturbing clients. *)

open Cmdliner
module Io = Krsp_graph.Io
module Engine = Krsp_server.Engine
module Server = Krsp_server.Server
module Metrics = Krsp_util.Metrics

let graph_file =
  Arg.(
    required
    & opt (some string) None
    & info [ "graph"; "g" ] ~docv:"FILE" ~doc:"Topology in edge-list format (see Io).")

let unix_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "unix"; "u" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket at $(docv).")

let tcp_port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Listen on TCP $(docv) (see $(b,--host)).")

let tcp_host =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Bind address for $(b,--port).")

let cache_size =
  Arg.(
    value
    & opt int Engine.default_config.Engine.cache_capacity
    & info [ "cache" ] ~docv:"N" ~doc:"Solution-cache capacity (LRU entries).")

let engine_arg =
  Arg.(
    value & opt string "dp"
    & info [ "engine" ] ~docv:"ENGINE" ~doc:"Bicameral search engine: dp or lp.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domain pool width for parallel solving and solve offload (includes the socket \
           loop's domain). Default: $(b,KRSP_DOMAINS) when set, else the machine's \
           recommended domain count. $(docv)=1 disables all parallelism.")

let run graph_file unix_path tcp_port tcp_host cache_size engine_name domains =
  let g =
    try Io.of_edge_list (Io.read_file graph_file)
    with Failure msg | Sys_error msg ->
      Printf.eprintf "krspd: cannot load %s: %s\n" graph_file msg;
      exit 3
  in
  let solver = match engine_name with "lp" -> Krsp_core.Krsp.Lp | _ -> Krsp_core.Krsp.Dp in
  let config = { Engine.default_config with Engine.cache_capacity = cache_size; solver } in
  let pool =
    match domains with
    | Some size -> Krsp_util.Pool.create ~size:(max 1 size) ()
    | None -> Krsp_util.Pool.default ()
  in
  let engine = Engine.create ~config ~pool g in
  (match Krsp_check.Hook.install_from_env () with
  | Some level ->
    Printf.eprintf "krspd: KRSP_CERTIFY on — every solve is post-checked (%s)\n%!"
      (match level with Krsp_check.Check.Full -> "full" | Krsp_check.Check.Structural -> "structural")
  | None -> ());
  Sys.set_signal Sys.sigusr1
    (Sys.Signal_handle
       (fun _ ->
         (* stats_kv takes the (error-checked) metric locks; if the signal
            lands inside one of those critical sections, skip this dump
            rather than let Sys_error escape into the interrupted code *)
         try
           let kv = Engine.stats_kv engine in
           let b = Buffer.create 256 in
           List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s=%s\n" k v)) kv;
           Printf.eprintf "--- krspd metrics ---\n%s%!" (Buffer.contents b)
         with Sys_error _ -> ()));
  (* a client hanging up mid-write must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match (unix_path, tcp_port) with
  | Some path, _ ->
    Server.listen_and_serve engine (Server.Unix_socket path) ~on_listen:(fun () ->
        Printf.eprintf "krspd: serving on unix:%s (pid %d)\n%!" path (Unix.getpid ()));
    0
  | None, Some port ->
    Server.listen_and_serve engine (Server.Tcp (tcp_host, port)) ~on_listen:(fun () ->
        Printf.eprintf "krspd: serving on %s:%d (pid %d)\n%!" tcp_host port (Unix.getpid ()));
    0
  | None, None ->
    (* stdio mode: one session on stdin/stdout, handy for piping and tests *)
    Server.serve_channels engine stdin stdout;
    0

let cmd =
  let doc = "serve kRSP queries against a long-lived topology" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Loads the topology once and answers line-oriented requests: SOLVE src dst k D [eps], \
         QOS src dst k D, FAIL u v, RESTORE u v, STATS, PING. Responses are single lines \
         (SOLUTION/MUTATED/STATS/PONG/ERR). Without $(b,--unix) or $(b,--port) the daemon \
         serves a single session on stdin/stdout.";
      `P
        "Solutions are cached (LRU, keyed by query and topology generation); FAIL/RESTORE \
         invalidate only affected entries, and repeated queries after a failure are re-solved \
         from the previous solution (warm start) instead of from scratch. Send SIGUSR1 for a \
         metrics dump on stderr.";
      `P
        "With $(b,--domains) > 1 (or KRSP_DOMAINS set) solves run on a pool of worker \
         domains: the socket loop keeps answering PING/STATS/cache hits and accepting \
         FAIL/RESTORE while solves are in flight, per-client response order is preserved, \
         and the solver itself parallelises its cycle searches and guess bisection \
         (results are identical at any width). Pool counters (pool.tasks, \
         pool.queue_depth, pool.domain<i>.busy_us) appear in STATS.";
      `S Manpage.s_exit_status;
      `P "0 on clean shutdown (EOF in stdio mode); 3 when the topology cannot be loaded."
    ]
  in
  Cmd.v
    (Cmd.info "krspd" ~version:Bin_version.version ~doc ~man)
    Term.(
      const run $ graph_file $ unix_path $ tcp_port $ tcp_host $ cache_size $ engine_arg
      $ domains_arg)

let () = exit (Cmd.eval' cmd)
