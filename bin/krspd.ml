(* krspd — the kRSP query-serving daemon.

   Loads a topology once, then serves SOLVE/QOS/FAIL/RESTORE/STATS/PING
   requests over a Unix-domain socket, TCP, or stdio (see
   Krsp_server.Protocol for the grammar) from a fleet of engine shards
   (see Krsp_server.Shard). SIGUSR1 dumps the per-shard and aggregated
   metrics to stderr without disturbing clients; SIGTERM drains the fleet
   gracefully and exits 0. *)

open Cmdliner
module Io = Krsp_graph.Io
module Engine = Krsp_server.Engine
module Shard = Krsp_server.Shard
module Server = Krsp_server.Server
module Metrics = Krsp_util.Metrics

let graph_file =
  Arg.(
    required
    & opt (some string) None
    & info [ "graph"; "g" ] ~docv:"FILE" ~doc:"Topology in edge-list format (see Io).")

let unix_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "unix"; "u" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket at $(docv).")

let tcp_port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Listen on TCP $(docv) (see $(b,--host)).")

let tcp_host =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Bind address for $(b,--port).")

let cache_size =
  Arg.(
    value
    & opt int Engine.default_config.Engine.cache_capacity
    & info [ "cache" ] ~docv:"N" ~doc:"Solution-cache capacity (LRU entries) per shard.")

let engine_arg =
  Arg.(
    value & opt string "dp"
    & info [ "engine" ] ~docv:"ENGINE" ~doc:"Bicameral search engine: dp or lp.")

let numeric_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "numeric" ] ~docv:"TIER"
        ~doc:
          "Numeric tier for every LP/DP the solver runs: $(b,float) (default; \
           double-precision first, certificate-gated exact fallback) or $(b,exact) \
           (rational arithmetic only). Default: $(b,KRSP_NUMERIC) when set, else float. \
           Answers are exact at either tier; the fallback counters appear in STATS as \
           numeric.*.")

let rsp_oracle_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rsp-oracle" ] ~docv:"ORACLE"
        ~doc:
          "RSP engine behind every k=1 solve: $(b,dp) (exact pseudo-polynomial), \
           $(b,larac) (Lagrangian heuristic, always certificate-gated), $(b,lorenz-raz) \
           (reference FPTAS) or $(b,holzmuller) (default; fast FPTAS). Default: \
           $(b,KRSP_RSP_ORACLE) when set, else holzmuller. Answers that could flip a \
           feasibility verdict fall back to the exact DP; the oracle counters appear in \
           STATS as rsp.oracle_*.")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards"; "s" ] ~docv:"N"
        ~doc:
          "Number of engine shards. Each shard owns a private engine (cache, frozen \
           topology views, solver pool) and a bounded admission queue drained by its own \
           domain; queries are routed by a hash of (src, dst) so repeat queries hit their \
           shard's cache, and FAIL/RESTORE are broadcast to all shards behind a generation \
           barrier. Default: $(b,KRSP_SHARDS) when set, else 1.")

let queue_bound_arg =
  Arg.(
    value
    & opt int Shard.default_queue_bound
    & info [ "queue-bound" ] ~docv:"N"
        ~doc:
          "Admission-queue bound per shard. When a shard's queue is full, new requests \
           routed to it are shed with $(b,ERR overload retry-after-ms=...) instead of \
           queueing unboundedly — offered load beyond capacity degrades by shedding while \
           the latency of admitted requests stays bounded.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Solver-pool width per shard (parallel cycle searches and guess bisection \
           within one solve). Default: $(b,KRSP_DOMAINS) when set, else the machine's \
           recommended domain count divided by the shard count. $(docv)=1 disables \
           within-solve parallelism; total domains are roughly shards × $(docv).")

let run graph_file unix_path tcp_port tcp_host cache_size engine_name numeric rsp_oracle
    shards queue_bound domains =
  let g =
    try Io.of_edge_list (Io.read_file graph_file)
    with Failure msg | Sys_error msg ->
      Printf.eprintf "krspd: cannot load %s: %s\n" graph_file msg;
      exit 3
  in
  let solver = match engine_name with "lp" -> Krsp_core.Krsp.Lp | _ -> Krsp_core.Krsp.Dp in
  let numeric =
    match numeric with
    | None -> None
    | Some s -> (
      match Krsp_numeric.Numeric.tier_of_string s with
      | Ok tier ->
        (* also pin the process default so LPs outside the engine config's
           reach (e.g. KRSP_CERTIFY's Full-level audit) follow the flag *)
        Krsp_numeric.Numeric.set_default tier;
        Some tier
      | Error msg ->
        Printf.eprintf "krspd: --numeric: %s\n" msg;
        exit 3)
  in
  let rsp_oracle =
    match rsp_oracle with
    | None -> None
    | Some s -> (
      match Krsp_rsp.Oracle.of_string s with
      | Ok kind ->
        (* pin the process default too, for oracle calls outside the
           engine config's reach *)
        Krsp_rsp.Oracle.set_default kind;
        Some kind
      | Error msg ->
        Printf.eprintf "krspd: --rsp-oracle: %s\n" msg;
        exit 3)
  in
  let config =
    {
      Engine.default_config with
      Engine.cache_capacity = cache_size;
      solver;
      numeric;
      rsp_oracle;
    }
  in
  let shards =
    match shards with
    | Some n -> max 1 n
    | None -> ( match Shard.env_shards () with Some n -> n | None -> 1)
  in
  let domains_per_shard =
    match domains with
    | Some n -> max 1 n
    | None -> (
      match Krsp_util.Pool.env_width () with
      | Some w -> w
      | None -> max 1 (Domain.recommended_domain_count () / shards))
  in
  let fleet = Shard.create ~config ~queue_bound ~domains_per_shard ~shards g in
  (match Krsp_check.Hook.install_from_env () with
  | Some level ->
    Printf.eprintf "krspd: KRSP_CERTIFY on — every solve is post-checked (%s)\n%!"
      (match level with Krsp_check.Check.Full -> "full" | Krsp_check.Check.Structural -> "structural")
  | None -> ());
  Sys.set_signal Sys.sigusr1
    (Sys.Signal_handle
       (fun _ ->
         (* the dump takes the (error-checked) metric locks; if the signal
            lands inside one of those critical sections, skip this dump
            rather than let Sys_error escape into the interrupted code.
            The dump is composed into one string and written with a single
            call, so per-shard sections never interleave. *)
         try
           let s = "--- krspd metrics ---\n" ^ Shard.dump fleet in
           ignore (Unix.write_substring Unix.stderr s 0 (String.length s))
         with Sys_error _ | Unix.Unix_error _ -> ()));
  (* a client hanging up mid-write must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match (unix_path, tcp_port) with
  | None, None ->
    (* stdio mode: one session on stdin/stdout, handy for piping and tests *)
    Server.serve_channels fleet stdin stdout;
    Shard.shutdown fleet;
    0
  | _ ->
    (* SIGTERM → graceful drain: stop accepting, finish every admitted
       request, write the replies, exit 0 *)
    let stop = ref false in
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true))
     with Invalid_argument _ -> ());
    let endpoint, describe =
      match (unix_path, tcp_port) with
      | Some path, _ ->
        (Server.Unix_socket path, Printf.sprintf "unix:%s" path)
      | None, Some port -> (Server.Tcp (tcp_host, port), Printf.sprintf "%s:%d" tcp_host port)
      | None, None -> assert false
    in
    Server.listen_and_serve fleet endpoint ~stop ~on_listen:(fun () ->
        Printf.eprintf "krspd: serving on %s (pid %d, %d shard(s))\n%!" describe
          (Unix.getpid ()) (Shard.shards fleet));
    Printf.eprintf "krspd: drained, bye\n%!";
    0

let cmd =
  let doc = "serve kRSP queries against a long-lived topology" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Loads the topology once and answers line-oriented requests: SOLVE src dst k D [eps], \
         QOS src dst k D, FAIL u v, RESTORE u v, STATS, PING. Responses are single lines \
         (SOLUTION/MUTATED/STATS/PONG/ERR). Without $(b,--unix) or $(b,--port) the daemon \
         serves a single session on stdin/stdout.";
      `P
        "With $(b,--shards) N (or KRSP_SHARDS) the daemon runs N engine shards, each with a \
         private solution cache, topology view and solver pool, fed by bounded admission \
         queues. Queries are routed by a hash of (src, dst) — stable across topology \
         generations so caches and warm-start donors stay co-located — while FAIL/RESTORE \
         are applied to every shard behind a generation barrier (no shard answers from a \
         newer topology generation than another). When a shard's queue is full the request \
         is shed with $(b,ERR overload retry-after-ms=...): back off at least that long and \
         retry. STATS and SIGUSR1 report both the fleet-aggregated view and per-shard \
         queue depths, busy time and caches.";
      `P
        "Solutions are cached (LRU, keyed by query and topology generation); FAIL/RESTORE \
         invalidate only affected entries, and repeated queries after a failure are re-solved \
         from the previous solution (warm start) instead of from scratch. Send SIGUSR1 for a \
         metrics dump on stderr. SIGTERM drains gracefully: the daemon stops accepting, \
         completes every admitted request, then exits 0.";
      `P
        "With $(b,--domains) > 1 each shard's solver additionally parallelises its cycle \
         searches and guess bisection on a private domain pool (results are identical at \
         any width). Pool counters appear in STATS.";
      `S Manpage.s_exit_status;
      `P
        "0 on clean shutdown (EOF in stdio mode, or SIGTERM after a graceful drain); 3 when \
         the topology cannot be loaded. Note that $(b,ERR overload) is a per-request \
         response, not a daemon failure: the daemon keeps serving and the shed request can \
         be retried."
    ]
  in
  Cmd.v
    (Cmd.info "krspd" ~version:Bin_version.version ~doc ~man)
    Term.(
      const run $ graph_file $ unix_path $ tcp_port $ tcp_host $ cache_size $ engine_arg
      $ numeric_arg $ rsp_oracle_arg $ shards_arg $ queue_bound_arg $ domains_arg)

let () = exit (Cmd.eval' cmd)
