(* krsp — command-line front end.

   Subcommands:
     generate   sample a topology and print it in edge-list format
     solve      run Algorithm 1 (optionally the Theorem 4 scaling) on a file
     exact      branch-and-bound optimum for small instances
     compare    run every algorithm on one instance and tabulate
     verify     solve and independently certify the outcome (Krsp_check)
     fuzz       seeded differential/metamorphic fuzzing with shrinking
     client     talk to a running krspd daemon
     dot        render a graph (and optionally a solution) as Graphviz DOT

   Exit codes (scripted callers branch on these, see EXIT STATUS in --help):
     0  success
     1  internal/transport error
     2  infeasible instance (fewer than k disjoint paths, or D unreachable)
     3  parse or I/O error (bad graph file, malformed spec) *)

open Cmdliner
module G = Krsp_graph.Digraph
module Io = Krsp_graph.Io
module X = Krsp_util.Xoshiro
module Instance = Krsp_core.Instance
module Krsp = Krsp_core.Krsp
module Protocol = Krsp_server.Protocol

let exit_infeasible = 2
let exit_parse_io = 3

let exits =
  Cmd.Exit.defaults
  @ [ Cmd.Exit.info exit_infeasible
        ~doc:
          "the instance is infeasible: fewer than $(b,k) edge-disjoint paths exist, or the \
           delay bound is unreachable.";
      Cmd.Exit.info exit_parse_io
        ~doc:"parse or I/O error: graph file missing or malformed, or a malformed spec."
    ]

(* ---- shared arguments ---------------------------------------------------- *)

let graph_file =
  Arg.(
    required
    & opt (some string) None
    & info [ "graph"; "g" ] ~docv:"FILE" ~doc:"Graph in edge-list format (see Io).")

let src_arg =
  Arg.(required & opt (some int) None & info [ "src"; "s" ] ~docv:"V" ~doc:"Source vertex.")

let dst_arg =
  Arg.(required & opt (some int) None & info [ "dst"; "t" ] ~docv:"V" ~doc:"Sink vertex.")

let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Number of disjoint paths.")

let delay_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "delay-bound"; "D" ] ~docv:"D" ~doc:"Bound on the paths' total delay.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let numeric_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "numeric" ] ~docv:"TIER"
        ~doc:
          "Numeric tier for the solver's LP/DP arithmetic: $(b,float) (double-precision \
           first, certificate-gated exact fallback) or $(b,exact) (rational arithmetic \
           only). Default: $(b,KRSP_NUMERIC) when set, else float. Answers are exact at \
           either tier.")

(* pins the process-wide default so every LP/DP below the subcommand —
   including the certifier's audit LPs — follows the flag *)
let apply_numeric = function
  | None -> ()
  | Some s -> (
    match Krsp_numeric.Numeric.tier_of_string s with
    | Ok tier -> Krsp_numeric.Numeric.set_default tier
    | Error msg ->
      Printf.eprintf "--numeric: %s\n" msg;
      exit exit_parse_io)

let rsp_oracle_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rsp-oracle" ] ~docv:"ORACLE"
        ~doc:
          "RSP engine behind the single-path (k=1) solves: $(b,dp) (exact \
           pseudo-polynomial), $(b,larac) (Lagrangian heuristic, always \
           certificate-gated), $(b,lorenz-raz) (reference FPTAS) or $(b,holzmuller) \
           (fast FPTAS). Default: $(b,KRSP_RSP_ORACLE) when set, else holzmuller. \
           Answers that could flip a feasibility verdict fall back to the exact DP.")

(* same pinning idea as [apply_numeric]: every oracle call below the
   subcommand follows the flag via Oracle.default *)
let apply_rsp_oracle = function
  | None -> ()
  | Some s -> (
    match Krsp_rsp.Oracle.of_string s with
    | Ok kind -> Krsp_rsp.Oracle.set_default kind
    | Error msg ->
      Printf.eprintf "--rsp-oracle: %s\n" msg;
      exit exit_parse_io)

let load_graph file =
  try Io.of_edge_list (Io.read_file file)
  with Failure msg | Sys_error msg ->
    Printf.eprintf "cannot load %s: %s\n" file msg;
    exit exit_parse_io

let load_instance file ~src ~dst ~k ~delay_bound =
  let g = load_graph file in
  try Instance.create g ~src ~dst ~k ~delay_bound
  with Invalid_argument msg ->
    Printf.eprintf "bad instance: %s\n" msg;
    exit exit_parse_io

let print_solution t sol =
  Format.printf "%a" (Instance.pp_solution t) sol

(* ---- generate ------------------------------------------------------------- *)

let generate topology n p seed out =
  let rng = X.create ~seed in
  let w = Krsp_gen.Topology.default_weights in
  let g =
    match topology with
    | "erdos" -> Krsp_gen.Topology.erdos_renyi rng ~n ~p w
    | "waxman" -> Krsp_gen.Topology.waxman rng ~n ~alpha:0.9 ~beta:0.3 w
    | "grid" ->
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      Krsp_gen.Topology.grid rng ~rows:side ~cols:side ~bidirectional:true w
    | "ring" -> Krsp_gen.Topology.ring_chords rng ~n ~chords:(n / 2) w
    | "fattree" ->
      let pods = max 2 (2 * (n / 10)) in
      Krsp_gen.Topology.fat_tree rng ~pods w
    | "dag" ->
      Krsp_gen.Topology.layered_dag rng ~layers:(max 2 (n / 4)) ~width:4 ~p:0.4 w
    | other -> failwith (Printf.sprintf "unknown topology %S" other)
  in
  let text = Io.to_edge_list g in
  (match out with
  | None -> print_string text
  | Some path ->
    Io.write_file path text;
    Printf.printf "wrote %s (n=%d, m=%d)\n" path (G.n g) (G.m g));
  0

let generate_cmd =
  let topology =
    Arg.(
      value
      & opt string "waxman"
      & info [ "topology" ] ~docv:"NAME"
          ~doc:"One of erdos, waxman, grid, ring, fattree, dag.")
  in
  let n = Arg.(value & opt int 20 & info [ "n" ] ~docv:"N" ~doc:"Size parameter.") in
  let p =
    Arg.(value & opt float 0.3 & info [ "p" ] ~docv:"P" ~doc:"Edge probability (erdos).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate" ~exits ~doc:"Sample a topology and print its edge list.")
    Term.(const generate $ topology $ n $ p $ seed_arg $ out)

(* ---- solve ----------------------------------------------------------------- *)

let solve file src dst k delay_bound epsilon engine numeric rsp_oracle dot_out =
  apply_numeric numeric;
  apply_rsp_oracle rsp_oracle;
  let t = load_instance file ~src ~dst ~k ~delay_bound in
  let engine = match engine with "lp" -> Krsp.Lp | _ -> Krsp.Dp in
  let outcome =
    match epsilon with
    | None -> (
      match Krsp.solve t ~engine () with
      | Ok (sol, stats) -> Ok (sol, Some stats)
      | Error e -> Error e)
    | Some eps -> (
      match Krsp_core.Scaling.solve t ~epsilon1:eps ~epsilon2:eps ~engine () with
      | Ok r -> Ok (r.Krsp_core.Scaling.solution, Some r.Krsp_core.Scaling.stats)
      | Error e -> Error e)
  in
  match outcome with
  | Error Krsp.No_k_disjoint_paths ->
    Printf.eprintf "infeasible: fewer than %d edge-disjoint paths\n" k;
    exit_infeasible
  | Error (Krsp.Delay_bound_unreachable d) ->
    Printf.eprintf "infeasible: minimum achievable total delay is %d > %d\n" d delay_bound;
    exit_infeasible
  | Ok (sol, stats) ->
    print_solution t sol;
    (match stats with
    | Some s ->
      Printf.printf
        "cancelled %d cycle(s) (%d type-0, %d type-1, %d type-2) over %d guess(es)%s\n"
        s.Krsp.iterations s.Krsp.type0 s.Krsp.type1 s.Krsp.type2 s.Krsp.guesses_tried
        (if s.Krsp.used_fallback then " [fallback]" else "")
    | None -> ());
    (match dot_out with
    | None -> ()
    | Some path ->
      let index_of e =
        let rec go i = function
          | [] -> None
          | p :: rest -> if List.mem e p then Some i else go (i + 1) rest
        in
        go 0 sol.Instance.paths
      in
      Io.write_file path (Io.to_dot ~highlight:index_of t.Instance.graph);
      Printf.printf "wrote %s\n" path);
    0

let solve_cmd =
  let epsilon =
    Arg.(
      value
      & opt (some float) None
      & info [ "epsilon"; "e" ] ~docv:"EPS"
          ~doc:"Run the Theorem 4 scaling at accuracy EPS instead of the exact loop.")
  in
  let engine =
    Arg.(
      value & opt string "dp"
      & info [ "engine" ] ~docv:"ENGINE" ~doc:"Bicameral search engine: dp or lp.")
  in
  let dot_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Also write a DOT rendering with the paths.")
  in
  Cmd.v
    (Cmd.info "solve" ~exits ~doc:"Solve a kRSP instance with Algorithm 1.")
    Term.(
      const solve $ graph_file $ src_arg $ dst_arg $ k_arg $ delay_arg $ epsilon $ engine
      $ numeric_arg $ rsp_oracle_arg $ dot_out)

(* ---- exact ----------------------------------------------------------------- *)

let exact file src dst k delay_bound numeric =
  apply_numeric numeric;
  let t = load_instance file ~src ~dst ~k ~delay_bound in
  match Krsp_core.Exact.solve t with
  | Some r ->
    Printf.printf "optimum: cost %d, delay %d\n" r.Krsp_core.Exact.cost r.Krsp_core.Exact.delay;
    let sol = Instance.solution_of_paths t r.Krsp_core.Exact.paths in
    print_solution t sol;
    0
  | None ->
    Printf.eprintf "infeasible\n";
    exit_infeasible

let exact_cmd =
  Cmd.v
    (Cmd.info "exact" ~exits ~doc:"Branch-and-bound optimum (small instances only).")
    Term.(const exact $ graph_file $ src_arg $ dst_arg $ k_arg $ delay_arg $ numeric_arg)

(* ---- compare ---------------------------------------------------------------- *)

let compare_algorithms file src dst k delay_bound numeric rsp_oracle =
  apply_numeric numeric;
  apply_rsp_oracle rsp_oracle;
  let t = load_instance file ~src ~dst ~k ~delay_bound in
  let module B = Krsp_core.Baselines in
  let table =
    Krsp_util.Table.create
      ~columns:
        [ ("algorithm", Krsp_util.Table.Left); ("cost", Krsp_util.Table.Right);
          ("delay", Krsp_util.Table.Right); ("feasible", Krsp_util.Table.Left)
        ]
  in
  let row name (r : B.run) =
    match r.B.solution with
    | Some sol ->
      Krsp_util.Table.add_row table
        [ name; string_of_int sol.Instance.cost; string_of_int sol.Instance.delay;
          (if r.B.feasible then "yes" else "NO")
        ]
    | None -> Krsp_util.Table.add_row table [ name; "-"; "-"; "NO" ]
  in
  (match Krsp.solve t () with
  | Ok (sol, _) ->
    row "kRSP (Algorithm 1)" { B.solution = Some sol; feasible = Instance.is_feasible t sol }
  | Error _ -> row "kRSP (Algorithm 1)" { B.solution = None; feasible = false });
  row "min-sum (delay-blind)" (B.min_sum_only t);
  row "min-delay (cost-blind)" (B.min_delay_only t);
  row "sequential LARAC" (B.larac_per_path t);
  row "zero-cost residual [18]" (B.zero_cost_residual t);
  Krsp_util.Table.print table;
  0

let compare_cmd =
  Cmd.v
    (Cmd.info "compare" ~exits ~doc:"Run every algorithm on one instance and tabulate.")
    Term.(
      const compare_algorithms $ graph_file $ src_arg $ dst_arg $ k_arg $ delay_arg
      $ numeric_arg $ rsp_oracle_arg)

(* ---- qos (Definition 1: per-path delay bounds) -------------------------------- *)

let qos file src dst k per_path_delay numeric =
  apply_numeric numeric;
  let g = load_graph file in
  match Krsp_core.Qos_paths.solve g ~src ~dst ~k ~per_path_delay () with
  | Krsp_core.Qos_paths.Paths (sol, quality) ->
    let t = Instance.create g ~src ~dst ~k ~delay_bound:(k * per_path_delay) in
    print_solution t sol;
    (match quality with
    | Krsp_core.Qos_paths.Strict ->
      Printf.printf "every path individually meets the %d bound\n" per_path_delay
    | Krsp_core.Qos_paths.Average ->
      Printf.printf
        "per-path bound not met everywhere (NP-hard to guarantee); total %d <= k*D = %d\n\
         dispatch urgent traffic on the fastest paths (see the route subcommand)\n"
        sol.Instance.delay (k * per_path_delay));
    0
  | Krsp_core.Qos_paths.No_k_disjoint_paths ->
    Printf.eprintf "infeasible: fewer than %d edge-disjoint paths\n" k;
    exit_infeasible
  | Krsp_core.Qos_paths.Relaxation_infeasible d ->
    Printf.eprintf "infeasible: even the total-delay relaxation needs %d > k*D = %d\n" d
      (k * per_path_delay);
    exit_infeasible

let qos_cmd =
  let per_path =
    Arg.(
      required
      & opt (some int) None
      & info [ "per-path-delay"; "P" ] ~docv:"D" ~doc:"Delay bound on each single path.")
  in
  Cmd.v
    (Cmd.info "qos" ~exits ~doc:"Per-path delay bounds (Definition 1) via the kRSP reduction.")
    Term.(const qos $ graph_file $ src_arg $ dst_arg $ k_arg $ per_path $ numeric_arg)

(* ---- route ------------------------------------------------------------------ *)

let route file src dst k delay_bound classes_spec =
  let t = load_instance file ~src ~dst ~k ~delay_bound in
  match Krsp.solve t () with
  | Error _ ->
    Printf.eprintf "no feasible path set\n";
    exit_infeasible
  | Ok (sol, _) ->
    let module PR = Krsp_route.Priority_routing in
    (* classes_spec: "name:priority:volume,name:priority:volume,..." *)
    let classes =
      String.split_on_char ',' classes_spec
      |> List.filter (fun s -> String.trim s <> "")
      |> List.map (fun spec ->
             match String.split_on_char ':' (String.trim spec) with
             | [ name; prio; vol ] -> (
               match (int_of_string_opt prio, float_of_string_opt vol) with
               | Some priority, Some volume -> { PR.name; priority; volume }
               | _ -> failwith (Printf.sprintf "bad class spec %S" spec))
             | _ -> failwith (Printf.sprintf "bad class spec %S (want name:prio:volume)" spec))
    in
    print_solution t sol;
    let a = PR.assign t.Instance.graph ~paths:sol.Instance.paths ~classes in
    List.iter
      (fun (name, d) -> Printf.printf "class %-10s mean delay %.1f\n" name d)
      a.PR.class_delay;
    Printf.printf "overall mean %.1f, urgency respected %b, overflow %.2f\n" (PR.mean_delay a)
      (PR.urgency_respected a) a.PR.overflow;
    0

let route_cmd =
  let classes =
    Arg.(
      value
      & opt string "urgent:0:0.5,normal:1:1.0,bulk:2:0.5"
      & info [ "classes" ] ~docv:"SPEC"
          ~doc:"Traffic classes as name:priority:volume, comma separated.")
  in
  Cmd.v
    (Cmd.info "route" ~exits ~doc:"Solve, then dispatch traffic classes over the paths by urgency.")
    Term.(const route $ graph_file $ src_arg $ dst_arg $ k_arg $ delay_arg $ classes)

(* ---- verify ------------------------------------------------------------------ *)

module Check = Krsp_check.Check

let level_arg =
  Arg.(
    value & opt string "full"
    & info [ "level" ] ~docv:"LEVEL"
        ~doc:"Certification level: $(b,structural) (validity, disjointness, sums, delay \
              bound) or $(b,full) (adds the LP/flow cost-bound audit).")

let parse_level = function "structural" -> Check.Structural | _ -> Check.Full

let verify repro graph src dst k delay_bound level differential numeric rsp_oracle =
  apply_numeric numeric;
  apply_rsp_oracle rsp_oracle;
  let t =
    match (repro, graph, src, dst, delay_bound) with
    | Some file, _, _, _, _ -> (
      try Krsp_check.Corpus.load file
      with Failure msg | Sys_error msg ->
        Printf.eprintf "cannot load %s: %s\n" file msg;
        exit exit_parse_io)
    | None, Some file, Some src, Some dst, Some delay_bound ->
      load_instance file ~src ~dst ~k ~delay_bound
    | None, _, _, _, _ ->
      Printf.eprintf "verify: need --repro FILE, or --graph with --src --dst --delay-bound\n";
      exit exit_parse_io
  in
  let level = parse_level level in
  let diff_code =
    if not differential then 0
    else begin
      match Krsp_check.Differential.all ~level t with
      | [] ->
        Printf.printf "differential: engines, widths, warm/cold and metamorphic all agree\n";
        0
      | mismatches ->
        List.iter (fun m -> Printf.eprintf "differential: %s\n" m) mismatches;
        1
    end
  in
  match Krsp.solve t () with
  | Error err ->
    let verdict =
      match err with
      | Krsp.No_k_disjoint_paths -> Check.Too_few_disjoint_paths
      | Krsp.Delay_bound_unreachable d -> Check.Delay_unreachable d
    in
    (match Check.audit_infeasible t verdict with
    | Ok () ->
      Printf.printf "infeasible (independently confirmed)\n";
      if diff_code = 0 then exit_infeasible else 1
    | Error msg ->
      Printf.eprintf "UNCONFIRMED infeasibility verdict: %s\n" msg;
      1)
  | Ok (sol, _) ->
    print_solution t sol;
    let cert = Check.certify ~level t sol in
    print_string (Check.to_string cert);
    if Check.ok cert && diff_code = 0 then 0 else 1

let verify_cmd =
  let repro =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro"; "r" ] ~docv:"FILE"
          ~doc:"A $(b,.krsp) instance file (graph + query line), e.g. a fuzz repro.")
  in
  let graph_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "graph"; "g" ] ~docv:"FILE" ~doc:"Graph in edge-list format (see Io).")
  in
  let src_opt =
    Arg.(value & opt (some int) None & info [ "src"; "s" ] ~docv:"V" ~doc:"Source vertex.")
  in
  let dst_opt =
    Arg.(value & opt (some int) None & info [ "dst"; "t" ] ~docv:"V" ~doc:"Sink vertex.")
  in
  let delay_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "delay-bound"; "D" ] ~docv:"D" ~doc:"Bound on the paths' total delay.")
  in
  let differential =
    Arg.(
      value & flag
      & info [ "differential" ]
          ~doc:
            "Also run the differential harness: DP vs LP engines, pool width 1 vs 4, warm vs \
             cold, and the metamorphic transformations.")
  in
  let man =
    [ `S Manpage.s_description;
      `P
        "Solves the instance, then re-checks the outcome without trusting the solver: path \
         validity, edge-disjointness and the delay bound from the raw edge lists, the \
         claimed sums against the edge weights, and (at $(b,--level full)) the cost against \
         independently computed bounds on the optimum. An infeasibility verdict is checked \
         against a fresh max-flow / min-delay-flow computation. Exit 0 = certified, 2 = \
         infeasibility confirmed, 1 = certification failed."
    ]
  in
  Cmd.v
    (Cmd.info "verify" ~exits ~man ~doc:"Solve and independently certify the outcome.")
    Term.(
      const verify $ repro $ graph_opt $ src_opt $ dst_opt $ k_arg $ delay_opt $ level_arg
      $ differential $ numeric_arg $ rsp_oracle_arg)

(* ---- fuzz -------------------------------------------------------------------- *)

let fuzz seed count churn inject level corpus max_failures numeric rsp_oracle =
  apply_numeric numeric;
  apply_rsp_oracle rsp_oracle;
  if churn then begin
    let inject =
      match Krsp_check.Fuzz.churn_inject_of_string inject with
      | Some i -> i
      | None ->
        Printf.eprintf "fuzz: unknown --churn --inject %S (clean, stale-entry)\n" inject;
        exit exit_parse_io
    in
    let outcome =
      Krsp_check.Fuzz.run_churn ~level:(parse_level level) ~inject ~count ~max_failures
        ?corpus_dir:corpus ~log:print_endline ~seed ()
    in
    if outcome.Krsp_check.Fuzz.churn_failures = [] then 0 else 1
  end
  else begin
    let inject =
      match Krsp_check.Fuzz.inject_of_string inject with
      | Some i -> i
      | None ->
        Printf.eprintf "fuzz: unknown --inject %S (clean, share-edge, drop-edge, tamper-cost)\n"
          inject;
        exit exit_parse_io
    in
    let outcome =
      Krsp_check.Fuzz.run ~level:(parse_level level) ~inject ~count ~max_failures
        ?corpus_dir:corpus ~log:print_endline ~seed ()
    in
    if outcome.Krsp_check.Fuzz.failures = [] then 0 else 1
  end

let fuzz_cmd =
  let count =
    Arg.(value & opt int 50 & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of cases.")
  in
  let churn =
    Arg.(
      value & flag
      & info [ "churn" ]
          ~doc:
            "Fuzz churn traces instead of single instances: each case generates a base \
             graph plus an interleaved schedule of solves and mutation batches \
             (insert/delete/re-weight), replayed incremental-overlay vs full-refreeze at \
             pool widths 1 and 4 with every witness certified. Shrunk disagreements are \
             saved as $(b,.churn) files.")
  in
  let inject =
    Arg.(
      value & opt string "clean"
      & info [ "inject" ] ~docv:"MODE"
          ~doc:
            "Plant a bug by mutating the solver's output before certification: $(b,clean) \
             (no mutation), $(b,share-edge), $(b,drop-edge), $(b,tamper-cost). With \
             $(b,--churn) the modes are $(b,clean) and $(b,stale-entry) (serve cached \
             solutions across mutations without invalidation — the staleness the serving \
             engine must never exhibit). Non-clean sweeps are expected to fail — they test \
             the harness itself.")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Save shrunk repros as $(b,.krsp) files here.")
  in
  let max_failures =
    Arg.(
      value & opt int 3
      & info [ "max-failures" ] ~docv:"N" ~doc:"Stop after this many shrunk failures.")
  in
  let man =
    [ `S Manpage.s_description;
      `P
        "Generates small random instances from the seed, runs the full solve pipeline and \
         certifies every outcome. Failing cases are shrunk (greedy edge removal, then k \
         reduction, then vertex compaction — re-running the identical pipeline after each \
         step) to a minimal repro. Fully deterministic: the same seed visits the same \
         instances and produces byte-identical repros."
    ]
  in
  Cmd.v
    (Cmd.info "fuzz" ~exits ~man ~doc:"Seeded deterministic fuzzing with shrinking.")
    Term.(
      const fuzz $ seed_arg $ count $ churn $ inject $ level_arg $ corpus $ max_failures
      $ numeric_arg $ rsp_oracle_arg)

(* ---- client ------------------------------------------------------------------ *)

let code_of_response line =
  match Protocol.parse_response line with
  | Ok (Protocol.Err (Protocol.Infeasible_disjoint | Protocol.Infeasible_delay _)) ->
    exit_infeasible
  | Ok (Protocol.Err (Protocol.Bad_request _ | Protocol.No_such_link)) -> exit_parse_io
  | Ok (Protocol.Err (Protocol.Internal _)) -> 1
  | Ok _ -> 0
  | Error _ -> 1

let client unix_path host port requests =
  let fd =
    try
      match (unix_path, port) with
      | Some path, _ ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      | None, Some port ->
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (addr, port));
        fd
      | None, None ->
        Printf.eprintf "client: need --unix PATH or --port PORT\n";
        exit exit_parse_io
    with
    | Unix.Unix_error (e, _, _) ->
      Printf.eprintf "client: connect: %s\n" (Unix.error_message e);
      exit 1
    | Not_found ->
      Printf.eprintf "client: cannot resolve %s\n" host;
      exit 1
  in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (* lock-step: one request line out, one response line in *)
  let exchange request code =
    output_string oc request;
    output_char oc '\n';
    flush oc;
    match input_line ic with
    | response ->
      print_endline response;
      max code (code_of_response response)
    | exception End_of_file ->
      Printf.eprintf "client: server closed the connection\n";
      1
  in
  let code =
    match requests with
    | _ :: _ -> List.fold_left (fun code r -> exchange r code) 0 requests
    | [] ->
      (* pipe mode: forward stdin line by line *)
      let rec go code =
        match input_line stdin with
        | line -> go (exchange line code)
        | exception End_of_file -> code
      in
      go 0
  in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  code

let client_cmd =
  let unix_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "unix"; "u" ] ~docv:"PATH" ~doc:"Connect to a krspd Unix-domain socket.")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Daemon host.")
  in
  let port =
    Arg.(value & opt (some int) None & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Daemon TCP port.")
  in
  let requests =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Request lines to send (e.g. 'SOLVE 0 9 2 40', 'STATS'). Without any, lines are \
             read from stdin.")
  in
  let man =
    [ `S Manpage.s_description;
      `P
        "Sends request lines to a running krspd daemon and prints one response line each. The \
         exit code reflects the worst response: 0 all OK, 2 infeasible, 3 rejected request, 1 \
         transport/internal error."
    ]
  in
  Cmd.v
    (Cmd.info "client" ~exits ~man ~doc:"Send requests to a running krspd daemon.")
    Term.(const client $ unix_path $ host $ port $ requests)

(* ---- trace-validate --------------------------------------------------------- *)

let trace_validate file =
  let contents =
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Printf.eprintf "trace-validate: %s\n" msg;
      exit exit_parse_io
  in
  match Krsp_obs.Trace.Json.validate_chrome contents with
  | Ok events ->
    Printf.printf "%s: valid Chrome trace, %d span event(s)\n" file events;
    0
  | Error msg ->
    Printf.eprintf "%s: invalid trace: %s\n" file msg;
    1

let trace_validate_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"A trace file exported by krspd (TRACE verb or SIGUSR2).")
  in
  let man =
    [ `S Manpage.s_description;
      `P
        "Checks that $(docv) is loadable Chrome trace-event JSON (a top-level event array \
         or an object with a $(b,traceEvents) array, every event carrying a string \
         $(b,ph)/$(b,name) and every complete event numeric $(b,ts)/$(b,dur)) and prints \
         the span-event count. Exit 0 = valid, 1 = malformed."
    ]
  in
  Cmd.v
    (Cmd.info "trace-validate" ~exits ~man ~doc:"Validate an exported Chrome trace file.")
    Term.(const trace_validate $ file)

(* ---- dot -------------------------------------------------------------------- *)

let dot file out =
  let g = load_graph file in
  let text = Io.to_dot g in
  (match out with
  | None -> print_string text
  | Some path ->
    Io.write_file path text;
    Printf.printf "wrote %s\n" path);
  0

let dot_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "dot" ~exits ~doc:"Render a graph file as Graphviz DOT.")
    Term.(const dot $ graph_file $ out)

(* ---- main ------------------------------------------------------------------- *)

let () =
  ignore (Krsp_check.Hook.install_from_env ());
  let info =
    Cmd.info "krsp" ~version:Bin_version.version
      ~doc:"k disjoint restricted shortest paths (Guo, Liao, Shen & Li, SPAA 2015)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ generate_cmd; solve_cmd; exact_cmd; compare_cmd; qos_cmd; route_cmd; verify_cmd;
            fuzz_cmd; client_cmd; trace_validate_cmd; dot_cmd
          ]))
