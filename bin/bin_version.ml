(* Single source of truth for the CLI/daemon version; keep in sync with
   dune-project. *)
let version = "1.1.0"
